use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Result, Shape, TensorError};

/// An owned, dense, row-major `f32` tensor.
///
/// `Tensor` is the single data currency of the whole workspace: network
/// inputs, weights, and activations are all `Tensor`s. The buffer is always
/// contiguous; views are expressed by slicing [`Tensor::data`].
///
/// ```
/// use tensor::{Tensor, Shape};
/// let t = Tensor::zeros(Shape::mat(2, 2));
/// assert_eq!(t.data(), &[0.0; 4]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor where every element is `value`.
    pub fn filled(shape: Shape, value: f32) -> Self {
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// `shape.volume()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Fills a tensor with values from `f(flat_index)`; useful in tests.
    pub fn from_fn(shape: Shape, f: impl FnMut(usize) -> f32) -> Self {
        let n = shape.volume();
        Tensor {
            shape,
            data: (0..n).map(f).collect(),
        }
    }

    /// Deterministic pseudo-random tensor drawn from `U(-scale, scale)`.
    ///
    /// Used for synthetic inputs and for the architecturally-exact but
    /// untrained Tonic model weights (see DESIGN.md §2: the paper evaluates
    /// performance, not accuracy, so weight values are immaterial).
    pub fn random_uniform(shape: Shape, scale: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new_inclusive(-scale, scale);
        let n = shape.volume();
        Tensor {
            shape,
            data: (0..n).map(|_| dist.sample(&mut rng)).collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for a valid shape).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the buffer in bytes (4 bytes per `f32`).
    pub fn byte_len(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Reinterprets the buffer under a new shape of identical volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if volumes differ.
    pub fn reshape(self, shape: Shape) -> Result<Self> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Element at a 2-D `(row, col)` position; the shape is interpreted as a
    /// matrix via [`Shape::as_matrix`].
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let (r, c) = self.shape.as_matrix();
        assert!(row < r && col < c, "index ({row},{col}) out of ({r},{c})");
        self.data[row * c + col]
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Self> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Index of the maximum element in row `row` when viewed as a matrix;
    /// this is the argmax used by the classifier layers.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_argmax(&self, row: usize) -> usize {
        let (r, c) = self.shape.as_matrix();
        assert!(row < r, "row {row} out of {r}");
        let slice = &self.data[row * c..(row + 1) * c];
        slice
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Stacks tensors along the batch (first) axis.
    ///
    /// This is the *batching* operation from §5.1 of the paper: multiple
    /// queries are stacked into one larger input so the DNN forward pass
    /// executes one bigger matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty or per-item shapes differ.
    pub fn stack_batch(parts: &[Tensor]) -> Result<Self> {
        let first = parts.first().ok_or(TensorError::EmptyShape)?;
        let mut total_batch = 0usize;
        for p in parts {
            if p.shape.dims()[1..] != first.shape.dims()[1..] {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_batch",
                    lhs: first.shape.dims().to_vec(),
                    rhs: p.shape.dims().to_vec(),
                });
            }
            total_batch += p.shape.batch();
        }
        let mut data = Vec::with_capacity(first.shape.volume() / first.shape.batch() * total_batch);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        let shape = first.shape.with_batch(total_batch);
        Tensor::from_vec(shape, data)
    }

    /// Stacks owned tensors along the batch (first) axis, consuming them.
    ///
    /// The by-value counterpart of [`Tensor::stack_batch`] for dispatch
    /// paths that own their inputs: a single part is returned as-is with
    /// **zero copies**, and the multi-part case reuses the first part's
    /// allocation when it can hold the whole batch. A 64-wide IMC batch
    /// would otherwise duplicate ~64×3×227×227 floats per forward pass.
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty or per-item shapes differ.
    pub fn stack_batch_owned(mut parts: Vec<Tensor>) -> Result<Self> {
        if parts.len() == 1 {
            return Ok(parts.pop().expect("len checked"));
        }
        let first = parts.first().ok_or(TensorError::EmptyShape)?;
        let mut total_batch = 0usize;
        for p in &parts {
            if p.shape.dims()[1..] != first.shape.dims()[1..] {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_batch",
                    lhs: first.shape.dims().to_vec(),
                    rhs: p.shape.dims().to_vec(),
                });
            }
            total_batch += p.shape.batch();
        }
        let per_item = first.shape.volume() / first.shape.batch();
        let shape = first.shape.with_batch(total_batch);
        let mut it = parts.into_iter();
        let mut data = it.next().expect("non-empty").data;
        data.reserve_exact(per_item * total_batch - data.len());
        for p in it {
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(shape, data)
    }

    /// Splits a batched tensor back into `counts.len()` tensors where part
    /// `i` receives `counts[i]` batch rows. Inverse of [`Tensor::stack_batch`].
    ///
    /// # Errors
    ///
    /// Returns an error if the counts do not sum to the batch size.
    pub fn split_batch(&self, counts: &[usize]) -> Result<Vec<Tensor>> {
        let total: usize = counts.iter().sum();
        if total != self.shape.batch() || counts.contains(&0) {
            return Err(TensorError::InvalidParams {
                op: "split_batch",
                reason: format!(
                    "counts {:?} do not partition batch {}",
                    counts,
                    self.shape.batch()
                ),
            });
        }
        let per_item = self.shape.volume() / self.shape.batch();
        let mut out = Vec::with_capacity(counts.len());
        let mut offset = 0usize;
        for &c in counts {
            let shape = self.shape.with_batch(c);
            let data = self.data[offset * per_item..(offset + c) * per_item].to_vec();
            out.push(Tensor::from_vec(shape, data)?);
            offset += c;
        }
        Ok(out)
    }

    /// Maximum absolute difference against another tensor of the same shape;
    /// the workhorse of numerical tests.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> Result<f32> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(6)
            .map(|v| format!("{v:.3}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 6 {
            write!(f, ", …; {} elems", self.data.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let err = Tensor::from_vec(Shape::mat(2, 2), vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Tensor::random_uniform(Shape::vec(64), 1.0, 7);
        let b = Tensor::random_uniform(Shape::vec(64), 1.0, 7);
        let c = Tensor::random_uniform(Shape::vec(64), 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stack_and_split_roundtrip() {
        let a = Tensor::from_fn(Shape::nchw(2, 1, 2, 2), |i| i as f32);
        let b = Tensor::from_fn(Shape::nchw(3, 1, 2, 2), |i| 100.0 + i as f32);
        let stacked = Tensor::stack_batch(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(stacked.shape().batch(), 5);
        let parts = stacked.split_batch(&[2, 3]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn stack_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(Tensor::stack_batch(&[a, b]).is_err());
    }

    #[test]
    fn stack_batch_owned_matches_borrowed_stack() {
        let a = Tensor::from_fn(Shape::nchw(2, 1, 2, 2), |i| i as f32);
        let b = Tensor::from_fn(Shape::nchw(3, 1, 2, 2), |i| 100.0 + i as f32);
        let borrowed = Tensor::stack_batch(&[a.clone(), b.clone()]).unwrap();
        let owned = Tensor::stack_batch_owned(vec![a, b]).unwrap();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn stack_batch_owned_single_part_is_passthrough() {
        let a = Tensor::from_fn(Shape::nchw(2, 1, 2, 2), |i| i as f32);
        let out = Tensor::stack_batch_owned(vec![a.clone()]).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn stack_batch_owned_rejects_empty_and_mismatched() {
        assert!(Tensor::stack_batch_owned(Vec::new()).is_err());
        let a = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(Tensor::stack_batch_owned(vec![a, b]).is_err());
    }

    #[test]
    fn split_rejects_bad_counts() {
        let t = Tensor::zeros(Shape::mat(4, 2));
        assert!(t.split_batch(&[1, 2]).is_err());
        assert!(t.split_batch(&[4, 0]).is_err());
        assert!(t.split_batch(&[2, 2]).is_ok());
    }

    #[test]
    fn row_argmax_finds_max() {
        let t = Tensor::from_vec(Shape::mat(2, 3), vec![0.1, 0.9, 0.3, 5.0, -1.0, 2.0]).unwrap();
        assert_eq!(t.row_argmax(0), 1);
        assert_eq!(t.row_argmax(1), 0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(Shape::mat(2, 6), |i| i as f32);
        let r = t.clone().reshape(Shape::nchw(2, 1, 2, 3)).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(Shape::mat(5, 5)).is_err());
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::zeros(Shape::vec(1));
        assert!(!format!("{t:?}").is_empty());
    }
}
