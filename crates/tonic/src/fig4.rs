//! Cycle accounting for Figure 4: how each application's CPU execution
//! splits between the DNN forward pass and its pre/post-processing.
//!
//! The DNN share comes from the calibrated `perf` CPU model. Pre/post
//! costs are analytic models of the production pipelines the paper used
//! (Kaldi's lattice-generating beam search, SENNA's per-word feature
//! extraction), since the slimmed-down functional implementations in this
//! crate deliberately omit the heavyweight parts (e.g. a 4M-state decoding
//! graph) that dominate those costs; each constant is justified inline.

use dnn::profile::WorkloadProfile;
use dnn::zoo::{self, App};
use perf::CpuSpec;

use crate::speech;

/// One application's CPU cycle breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleBreakdown {
    /// Seconds in the DNN forward pass.
    pub dnn_s: f64,
    /// Seconds in query pre-processing.
    pub pre_s: f64,
    /// Seconds in query post-processing.
    pub post_s: f64,
}

impl CycleBreakdown {
    /// Fraction of total cycles spent in the DNN (the Fig 4 bar).
    pub fn dnn_fraction(&self) -> f64 {
        self.dnn_s / (self.dnn_s + self.pre_s + self.post_s)
    }
}

/// Computes the Fig 4 breakdown for one application processing one query
/// (Table 3 input unit) on a single CPU core.
pub fn cycle_breakdown(cpu: &CpuSpec, app: App) -> CycleBreakdown {
    let meta = app.service_meta();
    let def = zoo::netdef(app);
    let profile =
        WorkloadProfile::of(&def, meta.inputs_per_query).expect("zoo networks always profile");
    let dnn_s = perf::cpu_forward_seconds(cpu, &profile);

    let (pre_s, post_s) = match app {
        // Images feed the network directly (paper §3.2.1: "The image tasks
        // do not have pre or postprocessing steps"); only the mean
        // subtraction and arg-max remain, which are bandwidth-trivial.
        App::Imc | App::Dig | App::Face => {
            let bytes = meta.input_bytes();
            (bytes / (cpu.mem_bw_gbps * 1e9), 1e-6)
        }
        // ASR pre-processing: 40-bin filterbank over 548 frames of 400
        // samples, ~6 scalar flops per (sample, bin) pair at a ~2 GFLOP/s
        // scalar rate. Post-processing: Kaldi's lattice-generating beam
        // search, ~20k active graph arcs per frame and ~130 ops per arc at
        // ~1 G op/s — the decode-side cost that makes Kaldi roughly
        // real-time on this class of core.
        App::Asr => {
            let frames = meta.inputs_per_query as f64;
            let pre = frames * (speech::FRAME_LEN * speech::NUM_BINS) as f64 * 6.0 / 2e9;
            let post = frames * 20_000.0 * 130.0 / 1e9;
            (pre, post)
        }
        // NLP pre-processing: SENNA's per-word tokenization, caps/suffix
        // features and hash-table lookups, ~10 µs per word of string work
        // on the 2.1 GHz Xeon. Post-processing: sentence-level Viterbi
        // (words × tags² fused multiply-compares) plus output assembly.
        App::Pos | App::Chk | App::Ner => {
            let words = meta.inputs_per_query as f64;
            let tags = zoo::senna_tags(app) as f64;
            let pre = words * 10e-6;
            let post = words * tags * tags * 4.0 / 1e9 + words * 4e-6;
            (pre, post)
        }
    };
    CycleBreakdown {
        dnn_s,
        pre_s,
        post_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdowns() -> Vec<(App, CycleBreakdown)> {
        let cpu = CpuSpec::xeon_e5_2620_v2();
        App::ALL
            .iter()
            .map(|&a| (a, cycle_breakdown(&cpu, a)))
            .collect()
    }

    #[test]
    fn image_tasks_are_almost_all_dnn() {
        // Fig 4: "almost all of the cycles for the image services are
        // spent on DNN computation."
        for (app, b) in breakdowns() {
            if app.is_image() {
                assert!(b.dnn_fraction() > 0.95, "{app}: {}", b.dnn_fraction());
            }
        }
    }

    #[test]
    fn asr_dnn_is_roughly_half() {
        // Fig 4: "the DNN service still consumes almost half of the
        // execution cycles for ASR."
        let cpu = CpuSpec::xeon_e5_2620_v2();
        let b = cycle_breakdown(&cpu, App::Asr);
        assert!(
            (0.35..0.65).contains(&b.dnn_fraction()),
            "ASR DNN fraction {}",
            b.dnn_fraction()
        );
    }

    #[test]
    fn nlp_dnn_is_more_than_two_thirds() {
        // Fig 4: "more than two thirds of the total execution time is DNN
        // computation" for the NLP tasks.
        for (app, b) in breakdowns() {
            if app.is_nlp() {
                assert!(
                    b.dnn_fraction() > 0.60 && b.dnn_fraction() < 0.95,
                    "{app}: {}",
                    b.dnn_fraction()
                );
            }
        }
    }

    #[test]
    fn all_components_positive() {
        for (app, b) in breakdowns() {
            assert!(b.dnn_s > 0.0 && b.pre_s > 0.0 && b.post_s > 0.0, "{app}");
        }
    }
}
