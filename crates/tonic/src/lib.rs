//! Tonic Suite: seven end-to-end DNN applications over the DjiNN service.
//!
//! Each application owns its *pre-processing* (raw input → DNN input
//! tensor) and *post-processing* (DNN output → final answer), exactly as
//! in the paper (§3.2):
//!
//! | App | Pre-processing | Post-processing |
//! |-----|----------------|-----------------|
//! | IMC/DIG/FACE | none (images feed the CNN directly) | arg-max class |
//! | ASR | mel filterbank features + frame splicing | HMM Viterbi decode |
//! | POS/CHK/NER | word-window embedding lookup | Viterbi tag sequence |
//!
//! CHK additionally issues an internal POS request first and folds the
//! predicted tags into its own DNN input, as the paper describes.
//!
//! The [`apps`] module ties pipelines to a backend ([`apps::Backend`]): either a
//! local in-process network or a remote DjiNN server over TCP.
//!
//! # Quickstart
//!
//! ```
//! use tonic_suite::apps::{TonicApp, Backend};
//! use dnn::zoo::App;
//!
//! let mut app = TonicApp::local(App::Dig)?;
//! let digits = tonic_suite::image::synth_digits(3, 7);
//! let labels = app.run_dig(&digits)?;
//! assert_eq!(labels.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod apps;
pub mod fig4;
pub mod image;
pub mod ipa;
pub mod speech;
pub mod text;
