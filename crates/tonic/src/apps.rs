//! The seven application drivers: pre-process → DjiNN request →
//! post-process, against either a local in-process network or a remote
//! DjiNN server.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use djinn::{trace, DjinnClient, DjinnError, StreamMode, TraceRecord};
use dnn::zoo::App;
use dnn::Network;
use tensor::Tensor;

use crate::{image, speech, text};

/// How many times a `Busy` (load-shed) reply is retried before the error
/// propagates to the application.
const BUSY_RETRIES: u32 = 4;

/// First backoff after a `Busy` reply; doubles per retry (1 → 16 ms).
const BUSY_BACKOFF: Duration = Duration::from_millis(1);

/// Where the DNN part of a query executes.
pub enum Backend {
    /// In-process forward pass (useful for tests and offline runs).
    Local(Arc<Network>),
    /// Remote DjiNN service over TCP. The client is boxed: it carries
    /// correlation state (pending/abandoned request maps) and would
    /// otherwise dwarf the `Local` variant.
    Remote {
        /// Connected client.
        client: Box<DjinnClient>,
        /// Model name on the server.
        model: String,
        /// Trace of the most recent successful request on this backend.
        last_trace: Option<TraceRecord>,
    },
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Local(n) => write!(f, "Backend::Local({})", n.def().name()),
            Backend::Remote { model, .. } => write!(f, "Backend::Remote({model})"),
        }
    }
}

impl Backend {
    fn infer(&mut self, input: &Tensor) -> djinn::Result<Tensor> {
        match self {
            Backend::Local(net) => Ok(net.forward(input)?),
            Backend::Remote {
                client,
                model,
                last_trace,
            } => {
                // A `Busy` reply is the server shedding load at admission;
                // back off briefly and retry a bounded number of times
                // before giving up, so short bursts ride through while a
                // genuinely saturated service still fails fast. The
                // request ID is drawn once, outside the loop: retries are
                // the same logical request and must trace under one ID.
                let request_id = trace::next_request_id();
                let mut delay = BUSY_BACKOFF;
                let mut attempts = 0;
                loop {
                    match client.infer_traced_with_id(model, input, request_id) {
                        Ok((tensor, mut record)) => {
                            record.busy_retries = attempts;
                            *last_trace = Some(record);
                            return Ok(tensor);
                        }
                        Err(DjinnError::Busy { .. }) if attempts < BUSY_RETRIES => {
                            attempts += 1;
                            std::thread::sleep(delay);
                            delay *= 2;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    /// Runs `input` through the backend as row-windows of `window_rows`,
    /// returning one output tensor per window in order. Local backends
    /// window the forward pass in-process; remote backends issue one
    /// protocol-v7 windowed stream request and collect its chunks. As
    /// with one-shot inference, a `Busy` shed reply is retried with
    /// backoff — a stream that was shed at admission has produced no
    /// chunks, so resending it is safe.
    fn stream_windows(&mut self, input: &Tensor, window_rows: u32) -> djinn::Result<Vec<Tensor>> {
        match self {
            Backend::Local(net) => {
                let rows = input.shape().batch();
                let step = window_rows as usize;
                let mut counts: Vec<usize> = Vec::new();
                let mut left = rows;
                while left > 0 {
                    let take = left.min(step);
                    counts.push(take);
                    left -= take;
                }
                let windows = input.split_batch(&counts).map_err(dnn::DnnError::from)?;
                windows.iter().map(|w| Ok(net.forward(w)?)).collect()
            }
            Backend::Remote { client, model, .. } => {
                let mut delay = BUSY_BACKOFF;
                let mut attempts = 0;
                loop {
                    let outcome: djinn::Result<Vec<Tensor>> = client
                        .stream(model, input, StreamMode::Windowed { window_rows })?
                        .map(|chunk| Ok(chunk?.tensor))
                        .collect();
                    match outcome {
                        Err(DjinnError::Busy { .. }) if attempts < BUSY_RETRIES => {
                            attempts += 1;
                            std::thread::sleep(delay);
                            delay *= 2;
                        }
                        other => return other,
                    }
                }
            }
        }
    }
}

/// One Tonic application bound to a backend.
///
/// Word chunking (CHK) holds a second backend for its internal POS
/// request, mirroring the paper's description: "this application
/// internally makes a POS service request, updates the tags for its
/// input, and then makes its own DNN service request."
#[derive(Debug)]
pub struct TonicApp {
    app: App,
    backend: Backend,
    /// POS backend used only by CHK.
    pos_backend: Option<Backend>,
}

impl TonicApp {
    /// Builds the application with an in-process network.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn local(app: App) -> djinn::Result<Self> {
        let backend = Backend::Local(Arc::new(dnn::zoo::network(app)?));
        let pos_backend = if app == App::Chk {
            Some(Backend::Local(Arc::new(dnn::zoo::network(App::Pos)?)))
        } else {
            None
        };
        Ok(TonicApp {
            app,
            backend,
            pos_backend,
        })
    }

    /// Builds the application against a remote DjiNN server that serves
    /// the Tonic models under their lower-case names.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn remote(app: App, addr: SocketAddr) -> djinn::Result<Self> {
        let backend = Backend::Remote {
            client: Box::new(DjinnClient::connect(addr)?),
            model: app.name().to_lowercase(),
            last_trace: None,
        };
        let pos_backend = if app == App::Chk {
            Some(Backend::Remote {
                client: Box::new(DjinnClient::connect(addr)?),
                model: "pos".into(),
                last_trace: None,
            })
        } else {
            None
        };
        Ok(TonicApp {
            app,
            backend,
            pos_backend,
        })
    }

    /// Which application this is.
    pub fn app(&self) -> App {
        self.app
    }

    /// Trace of this driver's most recent successful remote request (the
    /// primary backend, not CHK's internal POS pass). `None` for local
    /// backends or before the first success. `busy_retries` on the record
    /// counts how many `Busy` shed replies the request rode through under
    /// its single request ID.
    pub fn last_trace(&self) -> Option<&TraceRecord> {
        match &self.backend {
            Backend::Remote { last_trace, .. } => last_trace.as_ref(),
            Backend::Local(_) => None,
        }
    }

    fn expect(&self, want: App) -> djinn::Result<()> {
        if self.app == want {
            Ok(())
        } else {
            Err(DjinnError::Remote {
                message: format!("driver for {} invoked as {}", self.app, want),
            })
        }
    }

    /// Image classification: images → ImageNet class indices.
    ///
    /// # Errors
    ///
    /// Fails if this driver is not IMC or inference fails.
    pub fn run_imc(&mut self, images: &[Tensor]) -> djinn::Result<Vec<usize>> {
        self.expect(App::Imc)?;
        self.classify(images)
    }

    /// Digit recognition: digit images → digits 0–9.
    ///
    /// # Errors
    ///
    /// Fails if this driver is not DIG or inference fails.
    pub fn run_dig(&mut self, images: &[Tensor]) -> djinn::Result<Vec<usize>> {
        self.expect(App::Dig)?;
        self.classify(images)
    }

    /// Facial recognition: face crops → identity indices (83 celebrities).
    ///
    /// # Errors
    ///
    /// Fails if this driver is not FACE or inference fails.
    pub fn run_face(&mut self, images: &[Tensor]) -> djinn::Result<Vec<usize>> {
        self.expect(App::Face)?;
        self.classify(images)
    }

    fn classify(&mut self, images: &[Tensor]) -> djinn::Result<Vec<usize>> {
        let normalized: Vec<Tensor> = images.iter().map(image::normalize).collect();
        let batch = Tensor::stack_batch(&normalized).map_err(dnn::DnnError::from)?;
        let out = self.backend.infer(&batch)?;
        Ok(image::top1(&out))
    }

    /// Speech recognition: waveform → decoded phone sequence.
    ///
    /// # Errors
    ///
    /// Fails if this driver is not ASR, the audio is shorter than one
    /// analysis frame, or inference fails.
    pub fn run_asr(&mut self, waveform: &[f32]) -> djinn::Result<Vec<usize>> {
        self.expect(App::Asr)?;
        let frames = speech::filterbank(waveform);
        if frames.is_empty() {
            return Err(DjinnError::Remote {
                message: "utterance shorter than one analysis frame".into(),
            });
        }
        let features = speech::splice(&frames);
        let posteriors = self.backend.infer(&features)?;
        Ok(speech::PhoneHmm::new().decode(&posteriors))
    }

    /// Streaming speech recognition: the utterance's spliced feature
    /// rows flow through the backend `window_rows` frames at a time, and
    /// each arriving window of posteriors extends the Viterbi decode —
    /// yielding one partial hypothesis per window, the way an ASR
    /// front-end refines its transcript while the speaker is still
    /// talking. The last hypothesis equals the one-shot [`run_asr`]
    /// answer for the same audio.
    ///
    /// Remote backends issue a single protocol-v7 windowed stream
    /// request; local backends window the forward pass in-process.
    ///
    /// [`run_asr`]: TonicApp::run_asr
    ///
    /// # Errors
    ///
    /// Fails if this driver is not ASR, the audio is shorter than one
    /// analysis frame, `window_rows` is zero, or inference fails.
    pub fn run_asr_streaming(
        &mut self,
        waveform: &[f32],
        window_rows: u32,
    ) -> djinn::Result<Vec<Vec<usize>>> {
        self.expect(App::Asr)?;
        let frames = speech::filterbank(waveform);
        if frames.is_empty() {
            return Err(DjinnError::Remote {
                message: "utterance shorter than one analysis frame".into(),
            });
        }
        if window_rows == 0 {
            return Err(DjinnError::Protocol {
                reason: "streaming ASR needs at least one frame per window".into(),
            });
        }
        let features = speech::splice(&frames);
        let windows = self.backend.stream_windows(&features, window_rows)?;

        // Re-decode the growing posterior prefix after every window. The
        // HMM pass is cheap next to the DNN, so the partials stay honest:
        // each one is exactly what a decoder knowing only the audio so
        // far would output.
        let hmm = speech::PhoneHmm::new();
        let (_, width) = windows[0].shape().as_matrix();
        let mut rows: Vec<f32> = Vec::new();
        let mut hypotheses = Vec::with_capacity(windows.len());
        for window in &windows {
            rows.extend_from_slice(window.data());
            let prefix =
                Tensor::from_vec(tensor::Shape::mat(rows.len() / width, width), rows.clone())
                    .map_err(dnn::DnnError::from)?;
            hypotheses.push(hmm.decode(&prefix));
        }
        Ok(hypotheses)
    }

    /// Part-of-speech tagging: words → tag indices.
    ///
    /// # Errors
    ///
    /// Fails if this driver is not POS or inference fails.
    pub fn run_pos(&mut self, words: &[String]) -> djinn::Result<Vec<usize>> {
        self.expect(App::Pos)?;
        self.tag(words, None)
    }

    /// Named-entity recognition: words → entity tag indices.
    ///
    /// # Errors
    ///
    /// Fails if this driver is not NER or inference fails.
    pub fn run_ner(&mut self, words: &[String]) -> djinn::Result<Vec<usize>> {
        self.expect(App::Ner)?;
        self.tag(words, None)
    }

    /// Word chunking: words → chunk tag indices. Internally performs the
    /// POS request first and folds its tags into the CHK input.
    ///
    /// # Errors
    ///
    /// Fails if this driver is not CHK or either inference fails.
    pub fn run_chk(&mut self, words: &[String]) -> djinn::Result<Vec<usize>> {
        self.expect(App::Chk)?;
        // Internal POS pass.
        let pos_features = text::window_features(words, None);
        let pos_backend = self
            .pos_backend
            .as_mut()
            .expect("CHK always carries a POS backend");
        let pos_scores = pos_backend.infer(&pos_features)?;
        let pos_tags = text::TagModel::new(text::tag_count(App::Pos)).decode(&pos_scores);
        self.tag(words, Some(&pos_tags))
    }

    fn tag(&mut self, words: &[String], hints: Option<&[usize]>) -> djinn::Result<Vec<usize>> {
        let features = text::window_features(words, hints);
        let scores = self.backend.infer(&features)?;
        Ok(text::TagModel::new(text::tag_count(self.app)).decode(&scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dig_end_to_end_local() {
        let mut app = TonicApp::local(App::Dig).unwrap();
        let digits = image::synth_digits(3, 1);
        let labels = app.run_dig(&digits).unwrap();
        assert_eq!(labels.len(), 3);
        assert!(labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn pos_and_ner_end_to_end_local() {
        let sentence = text::synth_sentence(28, 4);
        let mut pos = TonicApp::local(App::Pos).unwrap();
        let tags = pos.run_pos(&sentence).unwrap();
        assert_eq!(tags.len(), 28);
        assert!(tags.iter().all(|&t| t < 45));

        let mut ner = TonicApp::local(App::Ner).unwrap();
        let ents = ner.run_ner(&sentence).unwrap();
        assert_eq!(ents.len(), 28);
        assert!(ents.iter().all(|&t| t < 9));
    }

    #[test]
    fn chk_uses_internal_pos_request() {
        let sentence = text::synth_sentence(12, 5);
        let mut chk = TonicApp::local(App::Chk).unwrap();
        let chunks = chk.run_chk(&sentence).unwrap();
        assert_eq!(chunks.len(), 12);
        assert!(chunks.iter().all(|&t| t < 23));
    }

    #[test]
    fn asr_end_to_end_local_short_utterance() {
        let mut asr = TonicApp::local(App::Asr).unwrap();
        let wav = speech::synth_utterance(0.15, 2); // a few frames
        let phones = asr.run_asr(&wav).unwrap();
        assert!(!phones.is_empty());
        assert!(phones.iter().all(|&p| p < speech::PHONES));
    }

    #[test]
    fn asr_rejects_too_short_audio() {
        let mut asr = TonicApp::local(App::Asr).unwrap();
        assert!(asr.run_asr(&[0.0; 64]).is_err());
    }

    /// Streaming ASR refines toward the one-shot answer: one partial
    /// hypothesis per feature window, each a decode of exactly the audio
    /// seen so far, with the final partial equal to `run_asr`'s output.
    #[test]
    fn asr_streaming_partials_converge_to_the_oneshot_decode() {
        let mut asr = TonicApp::local(App::Asr).unwrap();
        let wav = speech::synth_utterance(0.25, 5);
        let full = asr.run_asr(&wav).unwrap();
        let partials = asr.run_asr_streaming(&wav, 3).unwrap();

        let frames = speech::filterbank(&wav).len();
        assert_eq!(partials.len(), frames.div_ceil(3), "one partial per window");
        // Decodes are run-collapsed, so a partial over k frames holds
        // between 1 and k phones — what grows is the audio covered, not
        // necessarily the hypothesis length.
        for (i, partial) in partials.iter().enumerate() {
            let heard = ((i + 1) * 3).min(frames);
            assert!(
                !partial.is_empty() && partial.len() <= heard,
                "partial {i} must decode the {heard} frames heard so far"
            );
            assert!(partial.iter().all(|&p| p < speech::PHONES));
        }
        assert_eq!(partials.last().unwrap(), &full, "final partial == one-shot");
        assert!(asr.run_asr_streaming(&wav, 0).is_err(), "zero-row windows");
    }

    /// The same streaming contract holds against a remote DjiNN server:
    /// the windowed stream request comes back as ordered chunks and the
    /// partial hypotheses match the local backend's bit-for-bit (both
    /// sides build the ASR network from the same fixed seed).
    #[test]
    fn asr_streaming_remote_matches_local() {
        let mut registry = djinn::ModelRegistry::new();
        registry.register("asr", dnn::zoo::network(App::Asr).unwrap());
        let server = djinn::DjinnServer::start(registry, djinn::ServerConfig::default()).unwrap();

        let wav = speech::synth_utterance(0.2, 9);
        let mut local = TonicApp::local(App::Asr).unwrap();
        let mut remote = TonicApp::remote(App::Asr, server.local_addr()).unwrap();
        assert_eq!(
            remote.run_asr_streaming(&wav, 4).unwrap(),
            local.run_asr_streaming(&wav, 4).unwrap()
        );
        server.shutdown();
    }

    #[test]
    fn wrong_driver_method_is_rejected() {
        let mut pos = TonicApp::local(App::Pos).unwrap();
        let imgs = image::synth_digits(1, 1);
        assert!(pos.run_dig(&imgs).is_err());
    }

    /// A `Busy` retry is the same logical request: the backend must
    /// resend it under the request ID it drew the first time, and the
    /// surviving trace must record how many sheds it rode through.
    #[test]
    fn busy_retries_keep_one_request_id() {
        use djinn::protocol::{read_frame, write_frame, Request, Response};
        use djinn::ServerTrace;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut ids = Vec::new();
            for attempt in 0..2 {
                let frame = read_frame(&mut stream).unwrap();
                let Request::Infer {
                    input, request_id, ..
                } = Request::decode(&frame).unwrap()
                else {
                    panic!("expected an infer request");
                };
                ids.push(request_id);
                let rsp = if attempt == 0 {
                    Response::Busy {
                        request_id,
                        model: "pos".into(),
                        queue_depth: 1,
                    }
                } else {
                    Response::Output {
                        tensor: input,
                        trace: ServerTrace::new(request_id, Default::default(), 5),
                    }
                };
                write_frame(&mut stream, &rsp.encode().unwrap()).unwrap();
            }
            ids
        });

        let mut backend = Backend::Remote {
            client: Box::new(DjinnClient::connect(addr).unwrap()),
            model: "pos".into(),
            last_trace: None,
        };
        let input = Tensor::random_uniform(tensor::Shape::mat(1, 4), 1.0, 7);
        backend.infer(&input).unwrap();

        let ids = server.join().unwrap();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], 0, "a traced request must carry a nonzero ID");
        assert_eq!(ids[0], ids[1], "the retry must reuse the original ID");
        let Backend::Remote { last_trace, .. } = backend else {
            unreachable!()
        };
        let record = last_trace.expect("a successful request leaves a trace");
        assert_eq!(record.request_id, ids[0]);
        assert_eq!(record.busy_retries, 1);
    }

    #[test]
    fn results_are_deterministic() {
        let sentence = text::synth_sentence(10, 6);
        let mut a = TonicApp::local(App::Pos).unwrap();
        let mut b = TonicApp::local(App::Pos).unwrap();
        assert_eq!(a.run_pos(&sentence).unwrap(), b.run_pos(&sentence).unwrap());
    }
}
