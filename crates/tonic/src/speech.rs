//! Speech pipeline for ASR: waveform → mel filterbank features → spliced
//! DNN input, and posterior → phone-sequence Viterbi decoding.
//!
//! This reproduces Kaldi's hybrid-DNN structure: the *pre-processing*
//! computes 40-bin log mel filterbank energies per 25 ms frame (10 ms
//! hop) and splices a ±5-frame context window into 440-dim DNN inputs;
//! the *post-processing* runs a Viterbi search over a phone-level HMM
//! using the DNN's senone posteriors as emission scores.

use tensor::{Shape, Tensor};

/// Audio sample rate (Hz).
pub const SAMPLE_RATE: usize = 16_000;
/// Analysis window length in samples (25 ms).
pub const FRAME_LEN: usize = 400;
/// Hop between frames in samples (10 ms).
pub const FRAME_HOP: usize = 160;
/// Mel filterbank size.
pub const NUM_BINS: usize = 40;
/// Context frames spliced on each side.
pub const CONTEXT: usize = 5;
/// DNN input dimensionality: (2*CONTEXT + 1) * NUM_BINS.
pub const FEATURE_DIM: usize = (2 * CONTEXT + 1) * NUM_BINS;
/// Number of senones the acoustic model scores.
pub const SENONES: usize = 3500;
/// Number of phones in the decoding HMM.
pub const PHONES: usize = 40;

/// Generates a deterministic synthetic utterance of `seconds` seconds: a
/// sum of wandering sinusoids, enough structure to exercise the DSP path.
pub fn synth_utterance(seconds: f64, seed: u64) -> Vec<f32> {
    let n = (seconds * SAMPLE_RATE as f64) as usize;
    let base = 100.0 + (seed % 17) as f64 * 23.0;
    (0..n)
        .map(|i| {
            let t = i as f64 / SAMPLE_RATE as f64;
            let f1 = base * (1.0 + 0.3 * (0.7 * t).sin());
            let f2 = 2.7 * base;
            (0.6 * (2.0 * std::f64::consts::PI * f1 * t).sin()
                + 0.4 * (2.0 * std::f64::consts::PI * f2 * t).sin()) as f32
        })
        .collect()
}

/// Computes log mel-style filterbank energies for every frame.
///
/// Each of the [`NUM_BINS`] triangular filters is evaluated with a direct
/// Goertzel-style projection at its center frequency — an honest O(frame ×
/// bins) DSP kernel standing in for FFT+mel binning.
pub fn filterbank(waveform: &[f32]) -> Vec<[f32; NUM_BINS]> {
    if waveform.len() < FRAME_LEN {
        return Vec::new();
    }
    let frames = (waveform.len() - FRAME_LEN) / FRAME_HOP + 1;
    // Mel-spaced center frequencies from 100 Hz to Nyquist.
    let mel = |f: f64| 1127.0 * (1.0 + f / 700.0).ln();
    let imel = |m: f64| 700.0 * ((m / 1127.0).exp() - 1.0);
    let lo = mel(100.0);
    let hi = mel(SAMPLE_RATE as f64 / 2.0);
    let centers: Vec<f64> = (0..NUM_BINS)
        .map(|b| imel(lo + (hi - lo) * (b as f64 + 1.0) / (NUM_BINS as f64 + 1.0)))
        .collect();
    let mut out = Vec::with_capacity(frames);
    for fi in 0..frames {
        let frame = &waveform[fi * FRAME_HOP..fi * FRAME_HOP + FRAME_LEN];
        let mut bins = [0.0f32; NUM_BINS];
        for (b, &fc) in centers.iter().enumerate() {
            // Projection onto a windowed sinusoid at the center frequency.
            let w = 2.0 * std::f64::consts::PI * fc / SAMPLE_RATE as f64;
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for (i, &s) in frame.iter().enumerate() {
                // Hamming window.
                let win = 0.54
                    - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / (FRAME_LEN - 1) as f64).cos();
                let v = s as f64 * win;
                re += v * (w * i as f64).cos();
                im += v * (w * i as f64).sin();
            }
            let energy = re * re + im * im;
            bins[b] = (energy.max(1e-10)).ln() as f32;
        }
        out.push(bins);
    }
    out
}

/// Splices filterbank frames with ±[`CONTEXT`] context into the DNN input
/// tensor: one row of [`FEATURE_DIM`] features per frame (edges repeat the
/// boundary frame, as Kaldi does).
pub fn splice(frames: &[[f32; NUM_BINS]]) -> Tensor {
    let n = frames.len().max(1);
    let mut data = Vec::with_capacity(n * FEATURE_DIM);
    for i in 0..n {
        for off in -(CONTEXT as isize)..=(CONTEXT as isize) {
            let j = (i as isize + off).clamp(0, n as isize - 1) as usize;
            let frame = frames.get(j).copied().unwrap_or([0.0; NUM_BINS]);
            data.extend_from_slice(&frame);
        }
    }
    Tensor::from_vec(Shape::mat(n, FEATURE_DIM), data).expect("volume matches by construction")
}

/// The phone-level decoding HMM: senone→phone mapping, phone transition
/// penalties, and self-loop preference.
#[derive(Debug, Clone)]
pub struct PhoneHmm {
    /// `log P(phone_j | phone_i)` penalties (negated costs), row-major
    /// `PHONES x PHONES`.
    transitions: Vec<f32>,
}

impl PhoneHmm {
    /// Builds the deterministic decoding HMM used by the suite: strong
    /// self-loops (phones persist across 10 ms frames) and uniform exits.
    pub fn new() -> Self {
        let self_loop = (0.7f32).ln();
        let exit = (0.3f32 / (PHONES - 1) as f32).ln();
        let mut transitions = vec![exit; PHONES * PHONES];
        for p in 0..PHONES {
            transitions[p * PHONES + p] = self_loop;
        }
        PhoneHmm { transitions }
    }

    /// Collapses senone posteriors (`frames x SENONES`) into per-phone log
    /// emission scores (`frames x PHONES`) by summing each phone's senones.
    pub fn phone_scores(&self, posteriors: &Tensor) -> Vec<Vec<f32>> {
        let (frames, senones) = posteriors.shape().as_matrix();
        let mut out = Vec::with_capacity(frames);
        for f in 0..frames {
            let row = &posteriors.data()[f * senones..(f + 1) * senones];
            let mut phones = vec![0.0f32; PHONES];
            for (s, &p) in row.iter().enumerate() {
                phones[s % PHONES] += p;
            }
            for v in &mut phones {
                *v = v.max(1e-10).ln();
            }
            out.push(phones);
        }
        out
    }

    /// Viterbi decode: the most likely phone per frame sequence, collapsed
    /// to runs (consecutive repeats removed) — the final "text".
    pub fn decode(&self, posteriors: &Tensor) -> Vec<usize> {
        let scores = self.phone_scores(posteriors);
        if scores.is_empty() {
            return Vec::new();
        }
        let frames = scores.len();
        let mut alpha = scores[0].clone();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(frames);
        back.push((0..PHONES).collect());
        for frame_scores in scores.iter().skip(1) {
            let mut next = vec![f32::NEG_INFINITY; PHONES];
            let mut bp = vec![0usize; PHONES];
            for (j, next_j) in next.iter_mut().enumerate() {
                #[allow(clippy::needless_range_loop)] // DP over prior states
                for i in 0..PHONES {
                    let cand = alpha[i] + self.transitions[i * PHONES + j];
                    if cand > *next_j {
                        *next_j = cand;
                        bp[j] = i;
                    }
                }
                *next_j += frame_scores[j];
            }
            alpha = next;
            back.push(bp);
        }
        // Trace back.
        let mut best = (0..PHONES)
            .max_by(|&a, &b| alpha[a].total_cmp(&alpha[b]))
            .unwrap_or(0);
        let mut path = vec![best; frames];
        for f in (1..frames).rev() {
            best = back[f][best];
            path[f - 1] = best;
        }
        // Collapse runs.
        let mut collapsed = Vec::new();
        for p in path {
            if collapsed.last() != Some(&p) {
                collapsed.push(p);
            }
        }
        collapsed
    }
}

impl Default for PhoneHmm {
    fn default() -> Self {
        PhoneHmm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filterbank_produces_one_row_per_frame() {
        let wav = synth_utterance(0.2, 1); // 3200 samples
        let fb = filterbank(&wav);
        let expect = (wav.len() - FRAME_LEN) / FRAME_HOP + 1;
        assert_eq!(fb.len(), expect);
        assert!(fb.iter().all(|f| f.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn filterbank_rejects_short_audio() {
        assert!(filterbank(&[0.0; 100]).is_empty());
    }

    #[test]
    fn filterbank_detects_tonal_energy() {
        // A pure tone must put more energy near its bin than silence does.
        let tone: Vec<f32> = (0..FRAME_LEN * 2)
            .map(|i| {
                (2.0 * std::f64::consts::PI * 440.0 * i as f64 / SAMPLE_RATE as f64).sin() as f32
            })
            .collect();
        let silence = vec![0.0f32; FRAME_LEN * 2];
        let e_tone: f32 = filterbank(&tone)[0].iter().sum();
        let e_sil: f32 = filterbank(&silence)[0].iter().sum();
        assert!(e_tone > e_sil);
    }

    #[test]
    fn splice_has_feature_dim_columns() {
        let frames = vec![[1.0f32; NUM_BINS]; 7];
        let t = splice(&frames);
        assert_eq!(t.shape().dims(), &[7, FEATURE_DIM]);
        assert_eq!(FEATURE_DIM, 440); // Kaldi's spliced input width
    }

    #[test]
    fn splice_repeats_edges() {
        let mut frames = vec![[0.0f32; NUM_BINS]; 3];
        frames[0] = [9.0; NUM_BINS];
        let t = splice(&frames);
        // First row's left context is all copies of frame 0.
        for c in 0..CONTEXT * NUM_BINS {
            assert_eq!(t.data()[c], 9.0);
        }
    }

    #[test]
    fn viterbi_prefers_dominant_phone() {
        // Posteriors put all mass on senones of phone 3.
        let frames = 10;
        let mut data = vec![0.0f32; frames * SENONES];
        for f in 0..frames {
            data[f * SENONES + 3] = 1.0; // senone 3 -> phone 3
        }
        let post = Tensor::from_vec(Shape::mat(frames, SENONES), data).unwrap();
        let path = PhoneHmm::new().decode(&post);
        assert_eq!(path, vec![3]);
    }

    #[test]
    fn viterbi_tracks_phone_changes() {
        let frames = 8;
        let mut data = vec![0.0f32; frames * SENONES];
        for f in 0..frames {
            let phone = if f < 4 { 1 } else { 2 };
            data[f * SENONES + phone] = 1.0;
        }
        let post = Tensor::from_vec(Shape::mat(frames, SENONES), data).unwrap();
        let path = PhoneHmm::new().decode(&post);
        assert_eq!(path, vec![1, 2]);
    }

    #[test]
    fn decode_handles_empty_posteriors_gracefully() {
        // A 1-frame, near-uniform posterior decodes without panicking.
        let post = Tensor::filled(Shape::mat(1, SENONES), 1.0 / SENONES as f32);
        let path = PhoneHmm::new().decode(&post);
        assert_eq!(path.len(), 1);
    }
}
