//! NLP pipeline for POS/CHK/NER: sentences → word-window embeddings →
//! DNN input, and score → Viterbi tag-sequence decoding (SENNA's
//! "window approach" with sentence-level inference).

use tensor::{Shape, Tensor};

/// Word embedding dimensionality (SENNA uses 50).
pub const EMBED_DIM: usize = 50;
/// Context window width in words (SENNA's window approach).
pub const WINDOW: usize = 7;
/// DNN input dimensionality per word: `WINDOW * EMBED_DIM`.
pub const FEATURE_DIM: usize = WINDOW * EMBED_DIM;

/// Tag-set sizes per task (Penn Treebank POS, CoNLL chunking, CoNLL NER).
pub fn tag_count(app: dnn::zoo::App) -> usize {
    dnn::zoo::senna_tags(app)
}

/// A tiny embedded vocabulary: enough common English words to build
/// plausible 28-word sentences (the paper's Table 3 input unit).
const VOCAB: &[&str] = &[
    "the",
    "a",
    "an",
    "of",
    "to",
    "in",
    "for",
    "on",
    "with",
    "at",
    "by",
    "from",
    "as",
    "is",
    "was",
    "are",
    "were",
    "be",
    "been",
    "has",
    "have",
    "had",
    "will",
    "would",
    "can",
    "could",
    "may",
    "might",
    "do",
    "does",
    "did",
    "not",
    "and",
    "or",
    "but",
    "if",
    "when",
    "while",
    "after",
    "before",
    "because",
    "company",
    "market",
    "stock",
    "price",
    "share",
    "year",
    "month",
    "week",
    "day",
    "government",
    "president",
    "minister",
    "city",
    "country",
    "state",
    "people",
    "group",
    "bank",
    "report",
    "plan",
    "deal",
    "sale",
    "growth",
    "rate",
    "percent",
    "million",
    "billion",
    "new",
    "old",
    "first",
    "last",
    "next",
    "big",
    "small",
    "high",
    "low",
    "good",
    "strong",
    "early",
    "late",
    "said",
    "says",
    "announced",
    "reported",
    "expected",
    "rose",
    "fell",
    "gained",
    "dropped",
    "increased",
    "john",
    "mary",
    "smith",
    "london",
    "paris",
    "tokyo",
    "america",
    "europe",
    "asia",
    "monday",
    "friday",
];

/// The embedded vocabulary, exposed for lexicon-based components (the
/// IPA pipeline's phone-to-word matching).
pub fn vocabulary() -> &'static [&'static str] {
    VOCAB
}

/// Deterministic word id: vocabulary index, or a hash bucket for
/// out-of-vocabulary words (SENNA's UNKNOWN handling).
pub fn word_id(word: &str) -> usize {
    let lower = word.to_lowercase();
    if let Some(i) = VOCAB.iter().position(|&w| w == lower) {
        return i;
    }
    // FNV-1a hash into the OOV region above the vocabulary.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in lower.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    VOCAB.len() + (h % 1000) as usize
}

/// The embedding for one word id: a deterministic pseudo-random vector,
/// standing in for SENNA's Wikipedia-trained lookup table.
pub fn embedding(id: usize) -> Vec<f32> {
    Tensor::random_uniform(Shape::vec(EMBED_DIM), 0.5, 0x5E44A + id as u64).into_vec()
}

/// Generates a deterministic `words`-word sentence from the embedded
/// vocabulary.
pub fn synth_sentence(words: usize, seed: u64) -> Vec<String> {
    (0..words)
        .map(|i| {
            let idx = ((seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 1442695))
                >> 16) as usize
                % VOCAB.len();
            VOCAB[idx].to_string()
        })
        .collect()
}

/// Preprocessing: builds the DNN input for a sentence — one row per word,
/// each row the concatenated embeddings of the `WINDOW` words centered on
/// it (sentence-boundary padding repeats the edge word).
///
/// `tag_hints` (used by CHK after its internal POS request) adds a small
/// deterministic per-tag offset into each center-word embedding, folding
/// the POS evidence into the same 350-dim input.
pub fn window_features(words: &[String], tag_hints: Option<&[usize]>) -> Tensor {
    let n = words.len().max(1);
    let ids: Vec<usize> = words.iter().map(|w| word_id(w)).collect();
    let half = WINDOW as isize / 2;
    let mut data = Vec::with_capacity(n * FEATURE_DIM);
    for i in 0..n {
        for off in -half..=half {
            let j = (i as isize + off).clamp(0, n as isize - 1) as usize;
            let mut emb = embedding(*ids.get(j).unwrap_or(&0));
            if off == 0 {
                if let Some(tags) = tag_hints {
                    let tag = tags.get(i).copied().unwrap_or(0);
                    let hint = embedding(0xA6_000 + tag);
                    for (e, h) in emb.iter_mut().zip(&hint) {
                        *e += 0.25 * h;
                    }
                }
            }
            data.extend_from_slice(&emb);
        }
    }
    Tensor::from_vec(Shape::mat(n, FEATURE_DIM), data).expect("volume matches by construction")
}

/// The tag-transition model used by sentence-level Viterbi decoding.
#[derive(Debug, Clone)]
pub struct TagModel {
    tags: usize,
    /// Log-transition scores, row-major `tags x tags`.
    transitions: Vec<f32>,
}

impl TagModel {
    /// Builds the deterministic transition model for a task with `tags`
    /// tags (stands in for SENNA's trained transition matrix).
    pub fn new(tags: usize) -> Self {
        let t = Tensor::random_uniform(Shape::mat(tags, tags), 1.0, 0x7A6 + tags as u64);
        TagModel {
            tags,
            transitions: t.into_vec(),
        }
    }

    /// Viterbi decode over the DNN's per-word tag scores
    /// (`words x tags`): the most likely tag sequence.
    pub fn decode(&self, scores: &Tensor) -> Vec<usize> {
        let (words, tags) = scores.shape().as_matrix();
        assert_eq!(
            tags, self.tags,
            "score width {tags} != model tags {}",
            self.tags
        );
        if words == 0 {
            return Vec::new();
        }
        let s = scores.data();
        let mut alpha: Vec<f32> = s[..tags].to_vec();
        let mut back: Vec<Vec<usize>> = vec![(0..tags).collect()];
        for w in 1..words {
            let mut next = vec![f32::NEG_INFINITY; tags];
            let mut bp = vec![0usize; tags];
            for (j, next_j) in next.iter_mut().enumerate() {
                #[allow(clippy::needless_range_loop)] // DP over prior states
                for i in 0..tags {
                    let cand = alpha[i] + self.transitions[i * tags + j];
                    if cand > *next_j {
                        *next_j = cand;
                        bp[j] = i;
                    }
                }
                *next_j += s[w * tags + j];
            }
            alpha = next;
            back.push(bp);
        }
        let mut best = (0..tags)
            .max_by(|&a, &b| alpha[a].total_cmp(&alpha[b]))
            .unwrap_or(0);
        let mut path = vec![best; words];
        for w in (1..words).rev() {
            best = back[w][best];
            path[w - 1] = best;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn word_ids_are_stable_and_case_insensitive() {
        assert_eq!(word_id("The"), word_id("the"));
        assert_eq!(word_id("zyzzyva"), word_id("zyzzyva"));
        assert!(word_id("zyzzyva") >= VOCAB.len());
    }

    #[test]
    fn window_features_shape_matches_senna() {
        let sent = synth_sentence(28, 1);
        let t = window_features(&sent, None);
        assert_eq!(t.shape().dims(), &[28, 350]);
    }

    #[test]
    fn tag_hints_change_features() {
        let sent = synth_sentence(5, 2);
        let plain = window_features(&sent, None);
        let hinted = window_features(&sent, Some(&[1, 2, 3, 4, 5]));
        assert_ne!(plain, hinted);
    }

    #[test]
    fn viterbi_follows_dominant_scores() {
        let model = TagModel::new(4);
        // Overwhelming evidence for tag 2 everywhere.
        let mut scores = Tensor::zeros(Shape::mat(6, 4));
        for w in 0..6 {
            scores.data_mut()[w * 4 + 2] = 100.0;
        }
        assert_eq!(model.decode(&scores), vec![2; 6]);
    }

    #[test]
    fn sentences_are_deterministic() {
        assert_eq!(synth_sentence(28, 9), synth_sentence(28, 9));
        assert_ne!(synth_sentence(28, 9), synth_sentence(28, 10));
    }

    proptest! {
        #[test]
        fn viterbi_output_length_matches_words(words in 1usize..40, seed in 0u64..50) {
            let model = TagModel::new(9);
            let scores = Tensor::random_uniform(Shape::mat(words, 9), 1.0, seed);
            let path = model.decode(&scores);
            prop_assert_eq!(path.len(), words);
            prop_assert!(path.iter().all(|&t| t < 9));
        }

        #[test]
        fn features_are_deterministic(words in 1usize..10, seed in 0u64..30) {
            let s = synth_sentence(words, seed);
            prop_assert_eq!(window_features(&s, None), window_features(&s, None));
        }
    }
}
