//! Image task inputs and pipelines (IMC, DIG, FACE).
//!
//! The paper's image services take decoded images directly — there is no
//! feature extraction. Synthetic inputs here carry exactly the shapes the
//! networks expect (227×227×3 for AlexNet, 28×28 for MNIST, 152×152×3 for
//! DeepFace); see DESIGN.md §2 for why content does not matter for the
//! performance study.

use tensor::{Shape, Tensor};

/// Mean pixel value subtracted during normalization, mirroring Caffe's
/// mean-image preprocessing.
const PIXEL_MEAN: f32 = 0.5;

/// Generates `n` synthetic RGB images for image classification
/// (AlexNet input: 3×227×227), seeded deterministically.
pub fn synth_photos(n: usize, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| Tensor::random_uniform(Shape::nchw(1, 3, 227, 227), 0.5, seed + i as u64))
        .collect()
}

/// Generates `n` synthetic handwritten-digit images (MNIST input:
/// 1×28×28) with a blob of "ink" whose position depends on the seed.
pub fn synth_digits(n: usize, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            let s = seed + i as u64;
            let cx = 8 + (s % 12) as i64;
            let cy = 8 + ((s / 12) % 12) as i64;
            Tensor::from_fn(Shape::nchw(1, 1, 28, 28), |idx| {
                let y = (idx / 28) as i64;
                let x = (idx % 28) as i64;
                let d2 = (x - cx).pow(2) + (y - cy).pow(2);
                if d2 < 16 {
                    1.0
                } else {
                    0.0
                }
            })
        })
        .collect()
}

/// Generates `n` synthetic face crops (DeepFace input: 3×152×152).
pub fn synth_faces(n: usize, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| Tensor::random_uniform(Shape::nchw(1, 3, 152, 152), 0.5, seed + 31 + i as u64))
        .collect()
}

/// Image preprocessing: mean subtraction (the only step the image
/// services perform before the DNN).
pub fn normalize(image: &Tensor) -> Tensor {
    image.map(|v| v - PIXEL_MEAN)
}

/// Image postprocessing: the predicted class index of every image in the
/// batched output.
pub fn top1(output: &Tensor) -> Vec<usize> {
    (0..output.shape().batch())
        .map(|r| output.row_argmax(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_expected_shapes() {
        assert_eq!(synth_photos(2, 1)[0].shape().dims(), &[1, 3, 227, 227]);
        assert_eq!(synth_digits(2, 1)[1].shape().dims(), &[1, 1, 28, 28]);
        assert_eq!(synth_faces(1, 1)[0].shape().dims(), &[1, 3, 152, 152]);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(synth_photos(1, 5), synth_photos(1, 5));
        assert_ne!(synth_photos(1, 5), synth_photos(1, 6));
    }

    #[test]
    fn digits_have_ink() {
        let d = &synth_digits(1, 3)[0];
        let ink: f32 = d.data().iter().sum();
        assert!(ink > 0.0);
    }

    #[test]
    fn normalize_centers_pixels() {
        let img = Tensor::filled(Shape::nchw(1, 1, 2, 2), 0.5);
        let out = normalize(&img);
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn top1_reads_every_row() {
        let out = Tensor::from_vec(Shape::mat(2, 3), vec![0.1, 0.7, 0.2, 0.9, 0.05, 0.05]).unwrap();
        assert_eq!(top1(&out), vec![1, 0]);
    }
}
