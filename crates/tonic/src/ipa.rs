//! An intelligent-personal-assistant (IPA) compound query: the workload
//! class that motivates the paper's introduction (Siri/Google Now-style
//! assistants whose every query fans out to several DNN services).
//!
//! One voice query drives three DjiNN services in sequence:
//!
//! 1. **ASR** — audio → phone sequence (Kaldi-style acoustic model +
//!    Viterbi);
//! 2. a **lexicon matcher** recovers words from phones (edit-distance
//!    nearest neighbour over the embedded vocabulary's G2P expansions);
//! 3. **POS** and **NER** — tag the transcript and extract entities.
//!
//! Per-stage latency is recorded so the compound query's service-time
//! composition (the Fig 4 pre/post story at the application level) is
//! observable.

use std::time::{Duration, Instant};

use dnn::zoo::App;

use crate::apps::TonicApp;
use crate::speech::PHONES;
use crate::text;

/// Deterministic grapheme-to-phoneme expansion: each letter maps to a
/// phone id; repeated phones collapse (mirroring the decoder's run-length
/// collapsing).
pub fn phones_for_word(word: &str) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::with_capacity(word.len());
    for b in word.to_lowercase().bytes().filter(u8::is_ascii_lowercase) {
        let phone = ((b - b'a') as usize * 7 + 3) % PHONES;
        if out.last() != Some(&phone) {
            out.push(phone);
        }
    }
    out
}

/// Edit distance between two phone sequences (Levenshtein).
pub fn phone_distance(a: &[usize], b: &[usize]) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Recovers the vocabulary word whose phone expansion is nearest to the
/// decoded sequence (the lexicon/language-model stage of a speech
/// front-end, reduced to its essence).
pub fn lexicon_match(phones: &[usize]) -> &'static str {
    text::vocabulary()
        .iter()
        .min_by_key(|w| phone_distance(phones, &phones_for_word(w)))
        .copied()
        .unwrap_or("the")
}

/// One named entity in the response: the word and its NER tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Surface word.
    pub word: String,
    /// NER tag index (0 = outside).
    pub tag: usize,
}

/// The structured result of an IPA query.
#[derive(Debug, Clone, PartialEq)]
pub struct IpaResponse {
    /// Recovered transcript.
    pub transcript: Vec<String>,
    /// POS tag per transcript word.
    pub pos_tags: Vec<usize>,
    /// Words tagged as entities (non-zero NER tag).
    pub entities: Vec<Entity>,
    /// Wall-clock time in the ASR stage (DNN + decode).
    pub asr_time: Duration,
    /// Wall-clock time in the lexicon stage.
    pub lexicon_time: Duration,
    /// Wall-clock time in the NLP stages (POS + NER).
    pub nlp_time: Duration,
}

/// A bound IPA pipeline: one driver per backing service.
#[derive(Debug)]
pub struct IpaPipeline {
    asr: TonicApp,
    pos: TonicApp,
    ner: TonicApp,
}

impl IpaPipeline {
    /// Builds the pipeline against in-process networks.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn local() -> djinn::Result<Self> {
        Ok(IpaPipeline {
            asr: TonicApp::local(App::Asr)?,
            pos: TonicApp::local(App::Pos)?,
            ner: TonicApp::local(App::Ner)?,
        })
    }

    /// Builds the pipeline against a remote DjiNN server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn remote(addr: std::net::SocketAddr) -> djinn::Result<Self> {
        Ok(IpaPipeline {
            asr: TonicApp::remote(App::Asr, addr)?,
            pos: TonicApp::remote(App::Pos, addr)?,
            ner: TonicApp::remote(App::Ner, addr)?,
        })
    }

    /// Processes one voice query end to end.
    ///
    /// The decoded phone stream is segmented into words at phone-run
    /// boundaries of `phones_per_word` (a stand-in for silence/word-break
    /// detection), each segment matched against the lexicon, and the
    /// transcript tagged.
    ///
    /// # Errors
    ///
    /// Propagates service failures; audio shorter than one analysis frame
    /// is rejected by the ASR stage.
    pub fn answer(&mut self, audio: &[f32]) -> djinn::Result<IpaResponse> {
        let t0 = Instant::now();
        let phones = self.asr.run_asr(audio)?;
        let asr_time = t0.elapsed();

        let t1 = Instant::now();
        let phones_per_word = 3usize;
        let transcript: Vec<String> = phones
            .chunks(phones_per_word)
            .map(|chunk| lexicon_match(chunk).to_string())
            .collect();
        let transcript = if transcript.is_empty() {
            vec!["the".to_string()]
        } else {
            transcript
        };
        let lexicon_time = t1.elapsed();

        let t2 = Instant::now();
        let pos_tags = self.pos.run_pos(&transcript)?;
        let ner_tags = self.ner.run_ner(&transcript)?;
        let nlp_time = t2.elapsed();

        let entities = transcript
            .iter()
            .zip(&ner_tags)
            .filter(|(_, &t)| t != 0)
            .map(|(w, &t)| Entity {
                word: w.clone(),
                tag: t,
            })
            .collect();
        Ok(IpaResponse {
            transcript,
            pos_tags,
            entities,
            asr_time,
            lexicon_time,
            nlp_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speech;

    #[test]
    fn phone_expansion_is_deterministic_and_bounded() {
        let a = phones_for_word("London");
        assert_eq!(a, phones_for_word("london"));
        assert!(a.iter().all(|&p| p < PHONES));
        assert!(!a.is_empty());
    }

    #[test]
    fn phone_distance_is_a_metric_on_examples() {
        let a = phones_for_word("market");
        let b = phones_for_word("markets");
        let c = phones_for_word("on");
        assert_eq!(phone_distance(&a, &a), 0);
        assert_eq!(phone_distance(&a, &b), phone_distance(&b, &a));
        assert!(phone_distance(&a, &b) < phone_distance(&a, &c));
    }

    #[test]
    fn lexicon_recovers_exact_expansions() {
        for word in ["company", "london", "growth"] {
            let phones = phones_for_word(word);
            assert_eq!(lexicon_match(&phones), word);
        }
    }

    #[test]
    fn pipeline_answers_a_voice_query_end_to_end() {
        let mut ipa = IpaPipeline::local().unwrap();
        let audio = speech::synth_utterance(0.2, 21);
        let response = ipa.answer(&audio).unwrap();
        assert!(!response.transcript.is_empty());
        assert_eq!(response.transcript.len(), response.pos_tags.len());
        assert!(response.asr_time > Duration::ZERO);
        assert!(response.nlp_time > Duration::ZERO);
        // Entities must be a subset of the transcript.
        for e in &response.entities {
            assert!(response.transcript.contains(&e.word));
            assert!(e.tag > 0 && e.tag < 9);
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let audio = speech::synth_utterance(0.2, 5);
        let mut a = IpaPipeline::local().unwrap();
        let mut b = IpaPipeline::local().unwrap();
        let ra = a.answer(&audio).unwrap();
        let rb = b.answer(&audio).unwrap();
        assert_eq!(ra.transcript, rb.transcript);
        assert_eq!(ra.pos_tags, rb.pos_tags);
        assert_eq!(ra.entities, rb.entities);
    }

    #[test]
    fn too_short_audio_is_rejected() {
        let mut ipa = IpaPipeline::local().unwrap();
        assert!(ipa.answer(&[0.0; 32]).is_err());
    }
}
