//! Open-loop arrivals: queries arrive in a Poisson stream, are assembled
//! into batches from the queue, and served by one GPU service instance.
//!
//! The closed-loop engine (`simulate`) measures saturated throughput;
//! this module measures the *latency distribution under a given load* —
//! the quantity a datacenter operator provisions against ("achieving high
//! throughput … while managing query latency", §1). It reproduces the
//! textbook batching trade-off: at low load batches stay small and
//! latency tracks the service time; near saturation, queueing dominates
//! and dynamic batching bends the curve by amortizing work.

use dnn::zoo::App;
use perf::GpuSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::obs::StageSummary;
use crate::queueing::{percentile_sorted, BoundedQueue, LatencyHistogram};
use crate::workload::ServiceWorkload;

/// Latency distribution summary from an open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopResult {
    /// Offered load, queries per second.
    pub offered_qps: f64,
    /// Completed queries per second (equals offered below saturation).
    pub completed_qps: f64,
    /// Mean query latency (arrival → batch completion), seconds.
    pub mean_latency_s: f64,
    /// 50th percentile latency, seconds.
    pub p50_latency_s: f64,
    /// 99th percentile latency, seconds.
    pub p99_latency_s: f64,
    /// Mean assembled batch size.
    pub mean_batch: f64,
    /// Queries shed at admission because the bounded queue was full
    /// (always 0 without a [`OpenLoopConfig::queue_bound`]). This is the
    /// simulation-side mirror of the live server's `Busy` response.
    pub shed_queries: u64,
    /// Whether the queue was still growing when the run ended
    /// (offered load beyond capacity).
    pub saturated: bool,
    /// Queue-wait stage summary (arrival → batch dispatch), in virtual
    /// microseconds — the same [`StageSummary`] the live server reports,
    /// so simulated and measured breakdowns are directly comparable.
    pub queue_wait: StageSummary,
    /// Service stage summary (batch dispatch → completion), in virtual
    /// microseconds.
    pub service: StageSummary,
}

/// Configuration of an open-loop experiment.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Device executing the batches.
    pub gpu: GpuSpec,
    /// Largest batch the server will assemble (Table 3 column).
    pub max_batch: usize,
    /// Admission-queue bound: arrivals beyond this many queued queries
    /// are shed (the live engine's `Busy` backpressure). `None` models
    /// the unbounded queue of the original paper setup.
    pub queue_bound: Option<usize>,
    /// Number of query arrivals to simulate.
    pub queries: usize,
    /// RNG seed for the Poisson arrival process.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            gpu: GpuSpec::k40(),
            max_batch: 16,
            queue_bound: None,
            queries: 2000,
            seed: 0xD1_07,
        }
    }
}

/// Runs the open-loop batching queue for `app` at `offered_qps`.
///
/// Service times come from the calibrated per-batch GPU timings plus the
/// PCIe transfer for each batch. Batches are assembled greedily: when the
/// server goes idle it takes `min(queue, max_batch)` queries.
///
/// # Errors
///
/// Propagates workload-construction failures.
///
/// # Panics
///
/// Panics if `offered_qps` is not positive or `queries` is zero.
pub fn run(app: App, offered_qps: f64, config: &OpenLoopConfig) -> dnn::Result<OpenLoopResult> {
    assert!(offered_qps > 0.0, "offered_qps must be positive");
    assert!(config.queries > 0, "need at least one query");
    // Pre-compute service times for every batch size we may assemble.
    let mut service_s = vec![0.0f64; config.max_batch + 1];
    for (b, slot) in service_s.iter_mut().enumerate().skip(1) {
        let w = ServiceWorkload::for_app(&config.gpu, app, b)?;
        *slot = w.gpu_alone_s()
            + (w.h2d_bytes + w.d2h_bytes) / (config.gpu.pcie_gbps * 1e9)
            + w.host_prep_s;
    }

    // Poisson arrivals.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrivals = Vec::with_capacity(config.queries);
    let mut t = 0.0f64;
    for _ in 0..config.queries {
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += -u.ln() / offered_qps;
        arrivals.push(t);
    }

    // Single-server batching queue — the same bounded-admission +
    // greedy-assembly discipline the live `djinn` engine runs, driven in
    // virtual time. The queue holds arrival timestamps.
    let mut queue = BoundedQueue::new(config.queue_bound.unwrap_or(usize::MAX - 1));
    let mut latencies = Vec::with_capacity(config.queries);
    let mut queue_hist = LatencyHistogram::new();
    let mut service_hist = LatencyHistogram::new();
    let mut server_free_at = 0.0f64;
    let mut next = 0usize;
    let mut batches = 0usize;
    while next < arrivals.len() || !queue.is_empty() {
        // Server becomes available; arrivals up to that instant queue
        // (or are shed, when the bound is hit).
        let start = if queue.is_empty() {
            server_free_at.max(arrivals[next])
        } else {
            server_free_at
        };
        while next < arrivals.len() && arrivals[next] <= start {
            let _ = queue.offer(arrivals[next]);
            next += 1;
        }
        let batch = queue.assemble(config.max_batch, |_| 1);
        let service = service_s[batch.len()];
        let done = start + service;
        for arr in batch {
            latencies.push(done - arr);
            // Stage attribution in virtual time: queued until the batch
            // dispatched, then the batch's service time.
            queue_hist.record(((start - arr) * 1e6) as u64);
            service_hist.record((service * 1e6) as u64);
        }
        batches += 1;
        server_free_at = done;
    }

    let elapsed = server_free_at.max(*arrivals.last().expect("non-empty"));
    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    // Saturated if the last query waited far longer than the first ones:
    // the queue grows without bound beyond capacity.
    let saturated = server_free_at > arrivals.last().unwrap() + 20.0 * service_s[1];
    Ok(OpenLoopResult {
        offered_qps,
        completed_qps: latencies.len() as f64 / elapsed,
        mean_latency_s: mean,
        p50_latency_s: percentile_sorted(&sorted, 0.50),
        p99_latency_s: percentile_sorted(&sorted, 0.99),
        mean_batch: latencies.len() as f64 / batches as f64,
        shed_queries: queue.shed_count(),
        saturated,
        queue_wait: StageSummary::of(&queue_hist),
        service: StageSummary::of(&service_hist),
    })
}

/// The maximum sustainable query rate for `app` with batches of
/// `max_batch` (the knee of the latency curve).
///
/// # Errors
///
/// Propagates workload-construction failures.
pub fn capacity_qps(app: App, config: &OpenLoopConfig) -> dnn::Result<f64> {
    let w = ServiceWorkload::for_app(&config.gpu, app, config.max_batch)?;
    let per_batch = w.gpu_alone_s()
        + (w.h2d_bytes + w.d2h_bytes) / (config.gpu.pcie_gbps * 1e9)
        + w.host_prep_s;
    Ok(config.max_batch as f64 / per_batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_batch: usize) -> OpenLoopConfig {
        OpenLoopConfig {
            max_batch,
            queries: 3000,
            ..OpenLoopConfig::default()
        }
    }

    #[test]
    fn latency_rises_with_load() {
        let app = App::Pos;
        let config = cfg(64);
        let cap = capacity_qps(app, &config).unwrap();
        let low = run(app, cap * 0.2, &config).unwrap();
        let high = run(app, cap * 0.9, &config).unwrap();
        assert!(high.mean_latency_s > low.mean_latency_s);
        assert!(!low.saturated);
    }

    #[test]
    fn p99_dominates_p50_dominates_nothing() {
        let config = cfg(16);
        let cap = capacity_qps(App::Dig, &config).unwrap();
        let r = run(App::Dig, cap * 0.7, &config).unwrap();
        assert!(r.p99_latency_s >= r.p50_latency_s);
        assert!(r.mean_latency_s > 0.0);
    }

    #[test]
    fn beyond_capacity_the_queue_saturates() {
        let config = cfg(16);
        let cap = capacity_qps(App::Imc, &config).unwrap();
        let r = run(App::Imc, cap * 2.0, &config).unwrap();
        assert!(r.saturated, "2x capacity did not saturate");
        assert!(r.completed_qps < cap * 1.1);
    }

    #[test]
    fn batching_extends_capacity() {
        // The §5.1 effect as a queueing statement: larger max batches
        // sustain higher NLP query rates.
        let cap1 = capacity_qps(App::Pos, &cfg(1)).unwrap();
        let cap64 = capacity_qps(App::Pos, &cfg(64)).unwrap();
        assert!(
            cap64 > cap1 * 8.0,
            "batch-64 capacity {cap64} vs batch-1 {cap1}"
        );
    }

    #[test]
    fn batches_grow_under_load() {
        let config = cfg(64);
        let cap = capacity_qps(App::Pos, &config).unwrap();
        let light = run(App::Pos, cap * 0.05, &config).unwrap();
        let heavy = run(App::Pos, cap * 0.9, &config).unwrap();
        assert!(heavy.mean_batch > light.mean_batch * 2.0);
    }

    #[test]
    fn bounded_queue_sheds_and_bounds_latency_under_overload() {
        // With an admission bound the simulator mirrors the live engine's
        // `Busy` shedding: overload costs shed queries, not unbounded p99.
        let bounded = OpenLoopConfig {
            queue_bound: Some(32),
            ..cfg(16)
        };
        let unbounded = cfg(16);
        let cap = capacity_qps(App::Imc, &bounded).unwrap();
        let b = run(App::Imc, cap * 2.0, &bounded).unwrap();
        let u = run(App::Imc, cap * 2.0, &unbounded).unwrap();
        assert!(b.shed_queries > 0, "no sheds at 2x capacity");
        assert_eq!(u.shed_queries, 0);
        assert!(u.saturated);
        assert!(
            b.p99_latency_s < u.p99_latency_s,
            "bounded p99 {} not below unbounded p99 {}",
            b.p99_latency_s,
            u.p99_latency_s
        );
    }

    #[test]
    fn stage_breakdown_matches_completed_queries() {
        let config = cfg(16);
        let cap = capacity_qps(App::Dig, &config).unwrap();
        let r = run(App::Dig, cap * 0.7, &config).unwrap();
        // Every completed query contributed one sample to each stage.
        assert_eq!(r.queue_wait.count, r.service.count);
        assert!(r.queue_wait.count > 0);
        assert!(r.service.p50_us > 0, "service time cannot be zero");
        // Stage quantiles stay ordered and bounded by the end-to-end p99.
        assert!(r.queue_wait.p50_us <= r.queue_wait.p99_us);
        let p99_total_us = (r.p99_latency_s * 1e6) as u64;
        assert!(r.service.p50_us <= p99_total_us);
    }

    #[test]
    fn results_are_deterministic() {
        let config = cfg(16);
        let a = run(App::Dig, 500.0, &config).unwrap();
        let b = run(App::Dig, 500.0, &config).unwrap();
        assert_eq!(a, b);
    }
}
