//! Service workloads: what one DNN service instance repeatedly executes.

use dnn::profile::WorkloadProfile;
use dnn::zoo::{self, App};
use perf::{gpu_forward, GpuSpec, KernelTiming};
use serde::{Deserialize, Serialize};

/// Host-side fixed overhead per batch (request handling, batch assembly,
/// staging buffers) — seconds.
const HOST_FIXED_S: f64 = 150e-6;
/// Host staging bandwidth for building the batched input (GB/s).
const HOST_STAGING_GBPS: f64 = 20.0;

/// Everything a simulated service instance does per batch: host-side prep,
/// an H2D transfer, a fixed kernel sequence, and a D2H transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceWorkload {
    /// Display name (e.g. `POS@64`).
    pub name: String,
    /// Per-kernel alone-timings, in launch order.
    pub kernels: Vec<KernelTiming>,
    /// Bytes moved host→device per batch (batched query payloads; uses the
    /// paper's measured Table 3 payload sizes, which include protocol
    /// serialization overhead).
    pub h2d_bytes: f64,
    /// Bytes moved device→host per batch (DNN output tensors).
    pub d2h_bytes: f64,
    /// Host-side prep time per batch, seconds.
    pub host_prep_s: f64,
    /// Queries folded into one batch.
    pub queries_per_batch: usize,
}

impl ServiceWorkload {
    /// Builds the workload for one Tonic application at a given query batch
    /// size, timing its kernels on `gpu`.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures (none occur for zoo networks).
    pub fn for_app(gpu: &GpuSpec, app: App, batch_queries: usize) -> dnn::Result<Self> {
        let meta = app.service_meta();
        let def = zoo::netdef(app);
        let items = meta.inputs_per_query * batch_queries;
        let profile = WorkloadProfile::of(&def, items)?;
        let timing = gpu_forward(gpu, &profile);
        let h2d_bytes = meta.input_bytes() * batch_queries as f64;
        let d2h_bytes = profile.output_bytes;
        let host_prep_s = HOST_FIXED_S + h2d_bytes / (HOST_STAGING_GBPS * 1e9);
        Ok(ServiceWorkload {
            name: format!("{}@{}", app.name(), batch_queries),
            kernels: timing.kernels,
            h2d_bytes,
            d2h_bytes,
            host_prep_s,
            queries_per_batch: batch_queries,
        })
    }

    /// Sum of the kernels' alone-times — the batch's GPU time with no
    /// co-runners.
    pub fn gpu_alone_s(&self) -> f64 {
        self.kernels.iter().map(|k| k.seconds).sum()
    }

    /// Strips all host interaction (prep + transfers): the paper's
    /// "pinned input" configuration used for Fig 12.
    pub fn pinned(mut self) -> Self {
        self.h2d_bytes = 0.0;
        self.d2h_bytes = 0.0;
        self.host_prep_s = 0.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_scales_with_batch() {
        let gpu = GpuSpec::k40();
        let w1 = ServiceWorkload::for_app(&gpu, App::Pos, 1).unwrap();
        let w64 = ServiceWorkload::for_app(&gpu, App::Pos, 64).unwrap();
        assert!(w64.h2d_bytes > w1.h2d_bytes * 60.0);
        assert!(w64.gpu_alone_s() > w1.gpu_alone_s());
        // Batched GPU time per query must be far lower (Fig 7a).
        assert!(w64.gpu_alone_s() / 64.0 < w1.gpu_alone_s() / 4.0);
    }

    #[test]
    fn h2d_uses_table3_payloads() {
        let gpu = GpuSpec::k40();
        let w = ServiceWorkload::for_app(&gpu, App::Imc, 1).unwrap();
        assert!((w.h2d_bytes - 604.0 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn pinned_strips_host_interaction() {
        let gpu = GpuSpec::k40();
        let w = ServiceWorkload::for_app(&gpu, App::Asr, 2)
            .unwrap()
            .pinned();
        assert_eq!(w.h2d_bytes, 0.0);
        assert_eq!(w.d2h_bytes, 0.0);
        assert_eq!(w.host_prep_s, 0.0);
        assert!(w.gpu_alone_s() > 0.0);
    }
}
