//! The fluid-flow discrete-event engine.
//!
//! Every service instance cycles through `Prep → H2D → Kernel* → D2H`.
//! At any instant each active flow has a *rate* determined by resource
//! sharing; the engine repeatedly advances to the next flow completion.

use crate::server::{ConcurrencyMode, ServerConfig};
use crate::workload::ServiceWorkload;

/// Per-instance statistics from a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Workload name.
    pub name: String,
    /// GPU the instance ran on.
    pub gpu: usize,
    /// Batches completed.
    pub batches: usize,
    /// Queries per second achieved by this instance alone.
    pub qps: f64,
    /// Mean batch latency (prep start → D2H completion), seconds.
    pub mean_latency_s: f64,
}

/// Aggregate result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total queries per second across all instances.
    pub qps: f64,
    /// Simulated wall-clock span, seconds.
    pub elapsed_s: f64,
    /// Mean batch latency across all completed batches, seconds.
    pub mean_latency_s: f64,
    /// Maximum observed batch latency, seconds.
    pub max_latency_s: f64,
    /// Per-instance breakdown.
    pub per_instance: Vec<InstanceStats>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Prep,
    H2d,
    Kernel(usize),
    D2h,
}

struct Instance {
    workload: ServiceWorkload,
    gpu: usize,
    phase: Phase,
    /// Remaining work in the current phase: seconds for Prep/Kernel flows,
    /// bytes for transfers.
    remaining: f64,
    batch_start: f64,
    batches_done: usize,
    latency_sum: f64,
    latency_max: f64,
    /// FIFO ticket for time-shared GPU arbitration.
    enqueued_at: u64,
}

impl Instance {
    fn begin_phase(&mut self, phase: Phase, ticket: &mut u64) {
        self.phase = phase;
        self.remaining = match phase {
            Phase::Prep => self.workload.host_prep_s.max(0.0),
            Phase::H2d => self.workload.h2d_bytes,
            Phase::Kernel(i) => self.workload.kernels[i].seconds,
            Phase::D2h => self.workload.d2h_bytes,
        };
        if matches!(phase, Phase::Kernel(_)) {
            *ticket += 1;
            self.enqueued_at = *ticket;
        }
    }
}

/// The MPS interference model: kernels sharing a GPU all slow down by
/// the oversubscription of the most contended resource. Each entry is
/// one active kernel's `(compute_demand, memory_demand)` as a fraction
/// of the GPU; the returned slowdown is `max(Σcompute, Σmemory, 1)`, so
/// co-located kernels run at full rate until some resource is saturated
/// and then degrade in proportion. Exposed so schedulers (e.g. the
/// djinn device layer) can price a prospective co-location without
/// running the event loop.
#[must_use]
pub fn mps_slowdown(demands: &[(f64, f64)]) -> f64 {
    let (sc, sm) = demands
        .iter()
        .fold((0.0f64, 0.0f64), |(c, m), &(dc, dm)| (c + dc, m + dm));
    sc.max(sm).max(1.0)
}

/// Runs the closed-loop simulation until `batches_per_instance` batches
/// have completed per instance on average, then reports throughput and
/// latency.
///
/// `instances` pairs each [`ServiceWorkload`] with the index of the GPU it
/// runs on (must be `< cfg.num_gpus`).
///
/// # Panics
///
/// Panics if `instances` is empty, a GPU index is out of range, or a
/// workload has no kernels.
pub fn simulate(
    cfg: &ServerConfig,
    instances: &[(ServiceWorkload, usize)],
    batches_per_instance: usize,
) -> SimResult {
    assert!(!instances.is_empty(), "no instances to simulate");
    for (w, g) in instances {
        assert!(*g < cfg.num_gpus, "gpu index {g} out of {}", cfg.num_gpus);
        assert!(!w.kernels.is_empty(), "workload {} has no kernels", w.name);
    }
    let mut ticket: u64 = 0;
    let mut insts: Vec<Instance> = instances
        .iter()
        .map(|(w, g)| {
            let mut inst = Instance {
                workload: w.clone(),
                gpu: *g,
                phase: Phase::Prep,
                remaining: 0.0,
                batch_start: 0.0,
                batches_done: 0,
                latency_sum: 0.0,
                latency_max: 0.0,
                enqueued_at: 0,
            };
            inst.begin_phase(Phase::Prep, &mut ticket);
            inst
        })
        .collect();
    // Desynchronize instance start times: identical closed-loop instances
    // would otherwise phase-lock and convoy on the shared host link, an
    // artifact real deployments (with jittered arrivals) do not show. The
    // stagger is absorbed into each instance's first prep phase; the first
    // batch per instance is excluded from latency statistics below.
    for (idx, inst) in insts.iter_mut().enumerate() {
        let transfer_s =
            (inst.workload.h2d_bytes + inst.workload.d2h_bytes) / (cfg.gpu.pcie_gbps * 1e9);
        inst.remaining += idx as f64 * (inst.workload.host_prep_s + transfer_s);
    }

    let target_total = batches_per_instance * insts.len();
    let pcie_bps = cfg.gpu.pcie_gbps * 1e9;
    let host_bps = cfg.host_io_gbps * 1e9;
    let mut last_proc: Vec<Option<usize>> = vec![None; cfg.num_gpus];
    let mut now = 0.0f64;
    let mut total_batches = 0usize;
    // Generous safety bound on event count, sized by the *deepest*
    // workload in the mix — deriving it from `insts[0]` alone truncated
    // heterogeneous runs whenever a shallow workload happened to come
    // first (batch counts silently came up short).
    let deepest = insts
        .iter()
        .map(|i| i.workload.kernels.len())
        .max()
        .expect("instances is non-empty");
    let max_events = target_total * (deepest + 8) * 4 + 10_000;

    for _ in 0..max_events {
        if total_batches >= target_total {
            break;
        }
        // ---- compute rates ----------------------------------------------
        let mut rates = vec![0.0f64; insts.len()];
        // GPU kernel flows, per GPU.
        // Indexed loop: `g` keys both the instance filter and `last_proc`.
        #[allow(clippy::needless_range_loop)]
        for g in 0..cfg.num_gpus {
            let active: Vec<usize> = insts
                .iter()
                .enumerate()
                .filter(|(_, i)| i.gpu == g && matches!(i.phase, Phase::Kernel(_)))
                .map(|(idx, _)| idx)
                .collect();
            if active.is_empty() {
                continue;
            }
            match cfg.mode {
                ConcurrencyMode::Mps => {
                    let demands: Vec<(f64, f64)> = active
                        .iter()
                        .filter_map(|&idx| {
                            if let Phase::Kernel(ki) = insts[idx].phase {
                                let kt = &insts[idx].workload.kernels[ki];
                                Some((kt.compute_demand, kt.memory_demand))
                            } else {
                                None
                            }
                        })
                        .collect();
                    let slowdown = mps_slowdown(&demands);
                    for &idx in &active {
                        rates[idx] = 1.0 / slowdown;
                    }
                }
                ConcurrencyMode::Timeshared => {
                    // FIFO by enqueue ticket; only the front runs.
                    let runner = *active
                        .iter()
                        .min_by_key(|&&idx| insts[idx].enqueued_at)
                        .expect("active is non-empty");
                    // Pay the context switch once, when a different process
                    // takes the GPU.
                    if last_proc[g] != Some(runner) {
                        insts[runner].remaining += cfg.context_switch_s;
                        last_proc[g] = Some(runner);
                    }
                    rates[runner] = 1.0;
                }
            }
        }
        // Transfer flows: share each GPU's full-duplex PCIe link, then the
        // directional host aggregate.
        for dir_h2d in [true, false] {
            let mut flow_rates: Vec<(usize, f64)> = Vec::new();
            for g in 0..cfg.num_gpus {
                let flows: Vec<usize> = insts
                    .iter()
                    .enumerate()
                    .filter(|(_, i)| {
                        i.gpu == g
                            && ((dir_h2d && i.phase == Phase::H2d)
                                || (!dir_h2d && i.phase == Phase::D2h))
                    })
                    .map(|(idx, _)| idx)
                    .collect();
                if flows.is_empty() {
                    continue;
                }
                let share = pcie_bps / flows.len() as f64;
                for idx in flows {
                    flow_rates.push((idx, share));
                }
            }
            let total: f64 = flow_rates.iter().map(|(_, r)| r).sum();
            let scale = if total > host_bps {
                host_bps / total
            } else {
                1.0
            };
            for (idx, r) in flow_rates {
                rates[idx] = r * scale;
            }
        }
        // Host prep flows run at unit rate on their own core.
        for (idx, inst) in insts.iter().enumerate() {
            if inst.phase == Phase::Prep {
                rates[idx] = 1.0;
            }
        }

        // ---- advance to the next completion ------------------------------
        let mut dt = f64::INFINITY;
        for (idx, inst) in insts.iter().enumerate() {
            if rates[idx] > 0.0 {
                dt = dt.min(inst.remaining / rates[idx]);
            }
        }
        assert!(dt.is_finite(), "deadlock: no flow can progress");
        let dt = dt.max(0.0);
        now += dt;
        for (idx, inst) in insts.iter_mut().enumerate() {
            if rates[idx] > 0.0 {
                inst.remaining -= rates[idx] * dt;
            }
        }

        // ---- phase transitions -------------------------------------------
        for idx in 0..insts.len() {
            if rates[idx] <= 0.0 || insts[idx].remaining > 1e-12 {
                continue;
            }
            let kernels = insts[idx].workload.kernels.len();
            let next = match insts[idx].phase {
                Phase::Prep => {
                    if insts[idx].workload.h2d_bytes > 0.0 {
                        Phase::H2d
                    } else {
                        Phase::Kernel(0)
                    }
                }
                Phase::H2d => Phase::Kernel(0),
                Phase::Kernel(i) if i + 1 < kernels => Phase::Kernel(i + 1),
                Phase::Kernel(_) => {
                    if insts[idx].workload.d2h_bytes > 0.0 {
                        Phase::D2h
                    } else {
                        // Batch completes here when nothing to send back.
                        complete_batch(&mut insts[idx], now, &mut total_batches);
                        Phase::Prep
                    }
                }
                Phase::D2h => {
                    complete_batch(&mut insts[idx], now, &mut total_batches);
                    Phase::Prep
                }
            };
            if next == Phase::Prep {
                insts[idx].batch_start = now;
            }
            let inst = &mut insts[idx];
            inst.begin_phase(next, &mut ticket);
        }
    }

    // The loop must exit because the batch target was reached, never
    // because the event bound ran out (several instances can complete in
    // the same event, so the total may overshoot by at most a handful).
    assert!(
        total_batches >= target_total,
        "event bound truncated the run: {total_batches}/{target_total} batches \
         after {max_events} events"
    );

    let elapsed = now.max(1e-12);
    let per_instance: Vec<InstanceStats> = insts
        .iter()
        .map(|i| InstanceStats {
            name: i.workload.name.clone(),
            gpu: i.gpu,
            batches: i.batches_done,
            qps: (i.batches_done * i.workload.queries_per_batch) as f64 / elapsed,
            mean_latency_s: if i.batches_done > 1 {
                i.latency_sum / (i.batches_done - 1) as f64
            } else {
                0.0
            },
        })
        .collect();
    let total_queries: f64 = per_instance.iter().map(|i| i.qps).sum::<f64>() * elapsed;
    let measured_batches: usize = per_instance
        .iter()
        .map(|i| i.batches.saturating_sub(1))
        .sum();
    let latency_sum: f64 = insts.iter().map(|i| i.latency_sum).sum();
    let max_latency_s = insts.iter().map(|i| i.latency_max).fold(0.0, f64::max);
    SimResult {
        qps: total_queries / elapsed,
        elapsed_s: elapsed,
        mean_latency_s: if measured_batches > 0 {
            latency_sum / measured_batches as f64
        } else {
            0.0
        },
        max_latency_s,
        per_instance,
    }
}

fn complete_batch(inst: &mut Instance, now: f64, total_batches: &mut usize) {
    // The first batch carries the desynchronization stagger; keep it out
    // of the latency statistics (it still counts toward throughput).
    if inst.batches_done > 0 {
        let latency = now - inst.batch_start;
        inst.latency_sum += latency;
        inst.latency_max = inst.latency_max.max(latency);
    }
    inst.batches_done += 1;
    *total_batches += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ConcurrencyMode, ServerConfig};
    use dnn::zoo::App;
    use perf::GpuSpec;

    fn workload(app: App, batch: usize) -> ServiceWorkload {
        ServiceWorkload::for_app(&GpuSpec::k40(), app, batch).unwrap()
    }

    fn mps_cfg(gpus: usize) -> ServerConfig {
        ServerConfig::k40_server(gpus)
    }

    #[test]
    fn mps_slowdown_tracks_the_bottleneck_resource() {
        // Under-subscribed: everyone runs at full rate.
        assert_eq!(mps_slowdown(&[]), 1.0);
        assert_eq!(mps_slowdown(&[(0.3, 0.2)]), 1.0);
        assert_eq!(mps_slowdown(&[(0.4, 0.1), (0.5, 0.2)]), 1.0);
        // Compute saturates first: slowdown is the compute sum.
        assert!((mps_slowdown(&[(0.9, 0.1), (0.9, 0.2)]) - 1.8).abs() < 1e-12);
        // Memory saturates first even though compute fits.
        assert!((mps_slowdown(&[(0.2, 1.5), (0.1, 1.0)]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_instance_throughput_matches_cycle_time() {
        let w = workload(App::Pos, 64);
        let cycle = w.host_prep_s + w.h2d_bytes / 12.0e9 + w.gpu_alone_s() + w.d2h_bytes / 12.0e9;
        let r = simulate(&mps_cfg(1), &[(w, 0)], 40);
        let expect = 64.0 / cycle;
        assert!(
            (r.qps - expect).abs() / expect < 0.05,
            "qps {} vs cycle estimate {}",
            r.qps,
            expect
        );
    }

    #[test]
    fn mps_concurrency_beats_single_instance() {
        // Fig 8: concurrent service instances raise throughput under MPS.
        let one = simulate(&mps_cfg(1), &[(workload(App::Pos, 64), 0)], 40);
        let four: Vec<_> = (0..4).map(|_| (workload(App::Pos, 64), 0)).collect();
        let r4 = simulate(&mps_cfg(1), &four, 40);
        assert!(
            r4.qps > one.qps * 1.3,
            "4 instances {} vs 1 instance {}",
            r4.qps,
            one.qps
        );
    }

    #[test]
    fn mixed_phase_apps_overlap_well_under_mps() {
        // FACE alternates compute-bound conv/fc kernels with memory-bound
        // locally-connected kernels, so MPS instances overlap phases
        // (bounded by the uncoalesced local layers' memory demand).
        let one = simulate(&mps_cfg(1), &[(workload(App::Face, 2), 0)], 25);
        let four: Vec<_> = (0..4).map(|_| (workload(App::Face, 2), 0)).collect();
        let r4 = simulate(&mps_cfg(1), &four, 25);
        let gain = r4.qps / one.qps;
        assert!(gain > 1.2, "FACE MPS gain {gain}");
    }

    #[test]
    fn mps_beats_timesharing_in_throughput_and_latency() {
        // Figs 8 and 9: MPS wins both axes at 4+ instances.
        let make = |mode| {
            let cfg = mps_cfg(1).with_mode(mode);
            let four: Vec<_> = (0..4).map(|_| (workload(App::Pos, 64), 0)).collect();
            simulate(&cfg, &four, 40)
        };
        let mps = make(ConcurrencyMode::Mps);
        let ts = make(ConcurrencyMode::Timeshared);
        assert!(mps.qps > ts.qps, "mps {} vs timeshared {}", mps.qps, ts.qps);
        assert!(
            mps.mean_latency_s < ts.mean_latency_s,
            "mps latency {} vs timeshared {}",
            mps.mean_latency_s,
            ts.mean_latency_s
        );
    }

    #[test]
    fn latency_grows_sharply_past_the_knee() {
        // Fig 9: latency is modest below ~4 concurrent services and grows
        // steeply beyond.
        let lat = |n: usize| {
            let v: Vec<_> = (0..n).map(|_| (workload(App::Imc, 16), 0)).collect();
            simulate(&mps_cfg(1), &v, 25).mean_latency_s
        };
        let l1 = lat(1);
        let l16 = lat(16);
        assert!(l16 > l1 * 6.0, "l1 {l1} l16 {l16}");
    }

    #[test]
    fn compute_saturated_apps_gain_little_from_mps() {
        // ASR is already at full occupancy: extra instances mostly queue.
        let one = simulate(&mps_cfg(1), &[(workload(App::Asr, 2), 0)], 25);
        let four: Vec<_> = (0..4).map(|_| (workload(App::Asr, 2), 0)).collect();
        let r4 = simulate(&mps_cfg(1), &four, 25);
        assert!(r4.qps < one.qps * 1.6, "asr mps gain {}", r4.qps / one.qps);
        assert!(r4.qps > one.qps * 0.9);
    }

    #[test]
    fn two_gpus_double_unshared_throughput() {
        // Compute-heavy apps do not contend on the host: 2 GPUs ≈ 2x.
        let one = simulate(&mps_cfg(1), &[(workload(App::Imc, 16), 0)], 30);
        let two = simulate(
            &mps_cfg(2),
            &[(workload(App::Imc, 16), 0), (workload(App::Imc, 16), 1)],
            30,
        );
        let ratio = two.qps / one.qps;
        assert!((1.85..2.1).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn pinned_inputs_remove_host_contention() {
        // Fig 12 mechanism: with transfers gone, NLP scales linearly.
        let mk = |pinned: bool, gpus: usize| {
            let v: Vec<_> = (0..gpus * 4)
                .map(|i| {
                    let w = workload(App::Pos, 64);
                    let w = if pinned { w.pinned() } else { w };
                    (w, i / 4)
                })
                .collect::<Vec<_>>();
            simulate(&mps_cfg(gpus), &v, 20).qps
        };
        let scaling_pinned = mk(true, 8) / mk(true, 1);
        let scaling_limited = mk(false, 8) / mk(false, 1);
        assert!(
            scaling_pinned > 6.5,
            "pinned 8-GPU scaling {scaling_pinned}"
        );
        assert!(
            scaling_limited < scaling_pinned,
            "limited {scaling_limited} vs pinned {scaling_pinned}"
        );
    }

    /// A synthetic workload with a chosen kernel depth and per-kernel
    /// runtime, for exercising the event bound independently of the real
    /// model zoo.
    fn synthetic(name: &str, kernel_count: usize, kernel_seconds: f64) -> ServiceWorkload {
        use perf::{KernelTiming, Limiter};
        let kernel = KernelTiming {
            seconds: kernel_seconds,
            occupancy: 0.5,
            compute_demand: 0.3,
            memory_demand: 0.2,
            limiter: Limiter::Compute,
            ipc_ratio: 0.5,
        };
        ServiceWorkload {
            name: name.into(),
            kernels: vec![kernel; kernel_count],
            h2d_bytes: 4096.0,
            d2h_bytes: 1024.0,
            host_prep_s: 1e-6,
            queries_per_batch: 1,
        }
    }

    /// Regression: the event bound used to be derived from the *first*
    /// instance's kernel count only. With a 1-kernel workload listed
    /// first and a 400-kernel one carrying the load, the bound ran out
    /// mid-run and the simulation silently returned with far fewer
    /// batches than asked for. The bound now sizes by the deepest
    /// workload in the mix, and the engine asserts the batch target was
    /// actually reached — a recurrence panics instead of returning
    /// quietly-wrong throughput.
    #[test]
    fn heterogeneous_kernel_depths_complete_every_batch() {
        let batches = 60; // 120 total across the two instances
                          // The shallow instance's single kernel is six orders of magnitude
                          // slower, so essentially every completed batch — and every event —
                          // belongs to the deep instance the old bound did not account for.
        let shallow_first = [
            (synthetic("shallow", 1, 1.0), 0),
            (synthetic("deep", 400, 1e-6), 0),
        ];
        let r = simulate(&mps_cfg(1), &shallow_first, batches);
        let total = |r: &SimResult| -> usize { r.per_instance.iter().map(|i| i.batches).sum() };
        assert!(
            total(&r) >= batches * 2,
            "event bound truncated the run: {}/{} batches",
            total(&r),
            batches * 2
        );
        // Instance order must not change how much gets simulated.
        let deep_first = [
            (synthetic("deep", 400, 1e-6), 0),
            (synthetic("shallow", 1, 1.0), 0),
        ];
        let r2 = simulate(&mps_cfg(1), &deep_first, batches);
        assert_eq!(total(&r), total(&r2));
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = simulate(&mps_cfg(1), &[(workload(App::Dig, 16), 0)], 20);
        let r2 = simulate(&mps_cfg(1), &[(workload(App::Dig, 16), 0)], 20);
        assert_eq!(r1, r2);
    }
}
