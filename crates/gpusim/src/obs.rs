//! Shared observability types: request-latency *stages* and their
//! summaries.
//!
//! The live DjiNN server and the open-loop simulator attribute a
//! request's latency to the same pipeline stages the paper's
//! throughput/latency study measures (Figs. 4–8): time queued before
//! dispatch, time spent waiting for co-batched company, time on the
//! compute device, and time on the wire. This module names those stages
//! once and gives every report in the workspace the same percentile
//! summary — so a simulated breakdown and a measured one line up column
//! for column.
//!
//! Empty summaries render as `n/a`, never as a fake zero: a run where
//! every request was shed has *no* latency distribution, and reporting
//! `0.00 ms` for it misreads as "instant".

use crate::queueing::LatencyHistogram;

/// A stage of a request's life, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Admission → dequeue: time spent in the bounded admission queue.
    Queue,
    /// Dequeue → executor start: time waiting for the batch to fill (and
    /// the stack of co-batched inputs to be assembled).
    Batch,
    /// Batch-ready → executor start: time blocked acquiring a compute
    /// lease from the shared-device scheduler (zero on a dedicated
    /// device).
    Lease,
    /// Executor start → executor end: the forward pass itself.
    Service,
    /// Everything the server cannot see: request/response serialization,
    /// network transit, and client-side framing.
    Wire,
    /// Client send → client receive: the end-to-end latency.
    Total,
}

impl Stage {
    /// The five additive components plus the end-to-end total, in
    /// presentation order.
    pub const ALL: [Stage; 6] = [
        Stage::Queue,
        Stage::Batch,
        Stage::Lease,
        Stage::Service,
        Stage::Wire,
        Stage::Total,
    ];

    /// Lower-case stage name used in reports and JSONL keys.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Batch => "batch",
            Stage::Lease => "lease",
            Stage::Service => "service",
            Stage::Wire => "wire",
            Stage::Total => "total",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Percentile summary of one stage's latency distribution, microseconds.
///
/// `count == 0` means the distribution is empty and every quantile is
/// meaningless; [`StageSummary::fmt_us`] renders such entries as `n/a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSummary {
    /// Samples summarized.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Largest sample (exact), microseconds.
    pub max_us: u64,
}

impl StageSummary {
    /// Summarizes a histogram (the server path: bounded memory over
    /// months of samples).
    pub fn of(h: &LatencyHistogram) -> Self {
        StageSummary {
            count: h.count(),
            p50_us: h.quantile(0.50),
            p95_us: h.quantile(0.95),
            p99_us: h.quantile(0.99),
            max_us: h.max(),
        }
    }

    /// Formats a microsecond quantity as milliseconds, or `n/a` when this
    /// summary is empty.
    pub fn fmt_us(&self, us: u64) -> String {
        if self.count == 0 {
            "n/a".to_string()
        } else {
            format!("{:.2} ms", us as f64 / 1e3)
        }
    }
}

/// A per-stage latency breakdown table, ready to render.
///
/// Built from one [`LatencyHistogram`] per stage; stages with no samples
/// print `n/a` across the row.
#[derive(Debug, Clone, Default)]
pub struct BreakdownTable {
    rows: Vec<(Stage, StageSummary)>,
}

impl BreakdownTable {
    /// An empty table.
    pub fn new() -> Self {
        BreakdownTable::default()
    }

    /// Appends one stage's summary.
    pub fn push(&mut self, stage: Stage, summary: StageSummary) {
        self.rows.push((stage, summary));
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[(Stage, StageSummary)] {
        &self.rows
    }

    /// Renders the table as aligned text, one stage per line:
    ///
    /// ```text
    /// stage      p50        p95        p99        max
    /// queue      0.12 ms    0.80 ms    1.40 ms    2.21 ms
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}\n",
            "stage", "p50", "p95", "p99", "max"
        );
        for (stage, s) in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>12} {:>12} {:>12} {:>12}\n",
                stage.name(),
                s.fmt_us(s.p50_us),
                s.fmt_us(s.p95_us),
                s.fmt_us(s.p99_us),
                s.fmt_us(s.max_us),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable_wire_keys() {
        // These strings appear in trace JSONL and reports; renaming them
        // is a breaking change to downstream tooling.
        let names: Vec<&str> = Stage::ALL.iter().map(Stage::name).collect();
        assert_eq!(
            names,
            ["queue", "batch", "lease", "service", "wire", "total"]
        );
    }

    #[test]
    fn summary_of_histogram_orders_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = StageSummary::of(&h);
        assert_eq!(s.count, 10_000);
        assert!(s.p50_us <= s.p95_us);
        assert!(s.p95_us <= s.p99_us);
        assert!(s.p99_us <= s.max_us);
        assert_eq!(s.max_us, 10_000);
    }

    #[test]
    fn empty_summary_renders_na_not_zero() {
        // Regression guard for the all-requests-shed report: an empty
        // distribution must say "n/a", not pretend latency was 0 ms.
        let s = StageSummary::of(&LatencyHistogram::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.fmt_us(s.p50_us), "n/a");
        let mut table = BreakdownTable::new();
        table.push(Stage::Total, s);
        let rendered = table.render();
        assert!(rendered.contains("n/a"), "{rendered}");
        assert!(!rendered.contains("0.00 ms"), "{rendered}");
    }

    #[test]
    fn populated_table_renders_every_stage() {
        let mut h = LatencyHistogram::new();
        h.record(1_500);
        let mut table = BreakdownTable::new();
        for stage in Stage::ALL {
            table.push(stage, StageSummary::of(&h));
        }
        let rendered = table.render();
        for stage in Stage::ALL {
            assert!(rendered.contains(stage.name()), "{rendered}");
        }
        assert!(rendered.contains("1.50 ms"), "{rendered}");
    }
}
