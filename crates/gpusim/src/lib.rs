//! Discrete-event GPU server simulator for the DjiNN reproduction.
//!
//! The paper's throughput studies (§5–§6) exercise mechanisms a real K40
//! server provides: input batching, NVIDIA MPS kernel concurrency versus
//! time-sliced context switching, PCIe transfers, and multi-GPU scaling
//! against a shared host. This crate simulates all of them with a
//! *fluid-flow discrete-event model*:
//!
//! * every service instance is a closed-loop state machine
//!   (host prep → H2D transfer → kernels → D2H transfer → repeat);
//! * kernels advertise compute/memory demand fractions (from
//!   [`perf::KernelTiming`]); under MPS, concurrent kernels co-run and the
//!   whole GPU slows by `max(1, Σ compute, Σ memory)` — low-occupancy NLP
//!   kernels co-run for free, which is the §5.2 effect;
//! * without MPS, kernels from different processes serialize FIFO with a
//!   context-switch penalty;
//! * H2D/D2H transfers share each GPU's full-duplex PCIe link, and all
//!   links share a finite host I/O bandwidth — the root cause of the NLP
//!   plateau at 4 GPUs in Fig 11.
//!
//! # Quickstart
//!
//! ```
//! use gpusim::{ServerConfig, ServiceWorkload, ConcurrencyMode};
//! use dnn::zoo::App;
//!
//! let cfg = ServerConfig::k40_server(1).with_mode(ConcurrencyMode::Mps);
//! let w = ServiceWorkload::for_app(&cfg.gpu, App::Pos, 64)?;
//! let result = gpusim::simulate(&cfg, &[(w, 0)], 50);
//! assert!(result.qps > 0.0);
//! # Ok::<(), dnn::DnnError>(())
//! ```

mod engine;
pub mod obs;
pub mod openloop;
pub mod queueing;
mod server;
mod workload;

pub use engine::{mps_slowdown, simulate, InstanceStats, SimResult};
pub use server::{server_sweep, standard_server_result, ConcurrencyMode, ServerConfig};
pub use workload::ServiceWorkload;
