//! Shared serving-queue primitives.
//!
//! The live DjiNN server (`djinn::engine`) and the open-loop simulator
//! ([`crate::openloop`]) model the *same* queueing discipline: a bounded
//! admission queue in front of a batching dispatcher. This module holds
//! that discipline once, as pure data structures with no threads and no
//! clocks, so the implementation and the simulation cannot drift apart:
//!
//! * [`BoundedQueue`] — a bounded FIFO with non-blocking admission
//!   (a full queue *sheds* the offered job instead of blocking the
//!   producer) and greedy batch assembly under a width cap, including the
//!   carry-over rule: a job that would push the batch past the cap stays
//!   at the head and seeds the next batch.
//! * [`LatencyHistogram`] — a log-bucketed latency recorder with bounded
//!   memory, for p50/p99 queue-wait and service-time telemetry that must
//!   survive millions of samples.
//! * [`percentile_sorted`] — the one percentile definition every report
//!   in the workspace uses.

use std::collections::VecDeque;

/// A bounded FIFO queue with shed-on-full admission.
///
/// Admission never blocks: [`BoundedQueue::offer`] either enqueues the
/// job or hands it straight back (`Err`), counting the shed. This is the
/// backpressure contract of the serving layer — under overload the
/// *client* is told to back off; no producer thread ever wedges on a
/// full queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    jobs: VecDeque<T>,
    capacity: usize,
    shed: u64,
    admitted: u64,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a queue that can never admit).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            jobs: VecDeque::new(),
            capacity,
            shed: 0,
            admitted: 0,
        }
    }

    /// Offers one job. Returns the depth after admission, or the job
    /// itself (shed) when the queue is full.
    #[allow(clippy::result_large_err)] // Err IS the returned job, by design
    pub fn offer(&mut self, job: T) -> Result<usize, T> {
        if self.jobs.len() >= self.capacity {
            self.shed += 1;
            return Err(job);
        }
        self.jobs.push_back(job);
        self.admitted += 1;
        Ok(self.jobs.len())
    }

    /// Removes and returns the head job.
    pub fn pop(&mut self) -> Option<T> {
        self.jobs.pop_front()
    }

    /// Removes the head job only if `pred` accepts it; otherwise the head
    /// stays queued (the carry-over rule: an overflowing job seeds the
    /// next batch instead of overshooting the current one).
    pub fn pop_if(&mut self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        if pred(self.jobs.front()?) {
            self.jobs.pop_front()
        } else {
            None
        }
    }

    /// Greedily assembles a batch from the head of the queue.
    ///
    /// The head job is always taken (a single job wider than `max_batch`
    /// still runs — alone); subsequent jobs are taken while the summed
    /// `width` stays within `max_batch`. The first job that would
    /// overflow is left at the head.
    pub fn assemble(&mut self, max_batch: usize, width: impl Fn(&T) -> usize) -> Vec<T> {
        let mut batch = Vec::new();
        let Some(first) = self.jobs.pop_front() else {
            return batch;
        };
        let mut total = width(&first);
        batch.push(first);
        while total < max_batch {
            match self.pop_if(|j| total + width(j) <= max_batch) {
                Some(job) => {
                    total += width(&job);
                    batch.push(job);
                }
                None => break,
            }
        }
        batch
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs shed because the queue was full.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Jobs admitted over the queue's lifetime.
    pub fn admitted_count(&self) -> u64 {
        self.admitted
    }
}

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per octave bounds
/// the relative quantization error at 12.5%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the whole `u64` range at `SUB_BITS` resolution.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// A log-bucketed latency histogram with bounded memory.
///
/// Values (microseconds) land in geometric buckets of ≤12.5% relative
/// width, so quantiles are accurate to that bound while the whole
/// structure stays a fixed ~4 KiB regardless of sample count — safe to
/// keep per model inside a server that runs for months.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let octave = 63 - u64::from(v.leading_zeros());
    let shift = octave - u64::from(SUB_BITS);
    let within = (v >> shift) - SUB;
    (SUB * (1 + shift) + within) as usize
}

/// Lower bound of the value range covered by bucket `idx`.
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let shift = idx / SUB - 1;
    let within = idx % SUB;
    (SUB + within) << shift
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value_us: u64) {
        self.counts[bucket_index(value_us)] += 1;
        self.total += 1;
        self.sum += u128::from(value_us);
        self.max = self.max.max(value_us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (exact).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Folds another histogram into this one. Bucket counts add, so
    /// merging is associative and commutative up to the shared bucket
    /// layout — per-shard histograms can be combined in any order and
    /// yield the same aggregate (the property the proptests below pin).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0..=1.0`), accurate to the bucket resolution.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return self.max; // the top rank is tracked exactly
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Exact for the top bucket in use: never report beyond max.
                return bucket_floor(idx).min(self.max);
            }
        }
        self.max
    }
}

/// The `q`-quantile of an ascending-sorted slice by the nearest-rank
/// definition used throughout the workspace. Returns 0 for empty input.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)) as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_sheds_when_full_and_returns_the_job() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.offer("a"), Ok(1));
        assert_eq!(q.offer("b"), Ok(2));
        assert_eq!(q.offer("c"), Err("c"));
        assert_eq!(q.shed_count(), 1);
        assert_eq!(q.admitted_count(), 2);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.offer("d"), Ok(2));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u32>::new(0);
    }

    #[test]
    fn assemble_respects_the_cap_with_carry_over() {
        let mut q = BoundedQueue::new(16);
        for w in [2usize, 2, 3, 1] {
            q.offer(w).unwrap();
        }
        // 2 + 2 fit in 4; the 3 would overflow and stays as carry-over.
        let batch = q.assemble(4, |w| *w);
        assert_eq!(batch, vec![2, 2]);
        assert_eq!(q.len(), 2);
        // The carried 3 seeds the next batch and the 1 joins it.
        let batch = q.assemble(4, |w| *w);
        assert_eq!(batch, vec![3, 1]);
    }

    #[test]
    fn oversized_head_runs_alone() {
        let mut q = BoundedQueue::new(8);
        q.offer(10usize).unwrap();
        q.offer(1usize).unwrap();
        let batch = q.assemble(4, |w| *w);
        assert_eq!(batch, vec![10]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn assemble_on_empty_queue_is_empty() {
        let mut q = BoundedQueue::<usize>::new(4);
        assert!(q.assemble(4, |w| *w).is_empty());
    }

    #[test]
    fn histogram_quantiles_are_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Log-bucket resolution: within 12.5% of the exact ranks.
        assert!((437..=500).contains(&p50), "p50 = {p50}");
        assert!((866..=990).contains(&p99), "p99 = {p99}");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_zero_and_huge_values() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            for probe in [v, v + v / 3, v + v / 2] {
                let idx = bucket_index(probe);
                assert!(idx >= last, "index not monotone at {probe}");
                assert!(idx < BUCKETS);
                assert!(bucket_floor(idx) <= probe);
                last = idx;
            }
        }
    }

    #[test]
    fn merge_combines_counts_sum_and_max() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [1_000u64, 10_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 10_000);
        assert!((a.mean() - 11_111.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut a = LatencyHistogram::new();
        for v in 0..100u64 {
            a.record(v * 7);
        }
        let before = (a.count(), a.max(), a.quantile(0.5), a.quantile(0.99));
        a.merge(&LatencyHistogram::new());
        assert_eq!(
            (a.count(), a.max(), a.quantile(0.5), a.quantile(0.99)),
            before
        );
    }

    proptest::proptest! {
        /// Bucket monotonicity: a larger value never lands in an earlier
        /// bucket, and every bucket floor lower-bounds its members.
        #[test]
        fn bucket_index_monotone_under_arbitrary_values(
            mut values in proptest::collection::vec(proptest::prelude::any::<u64>(), 1..64)
        ) {
            values.sort_unstable();
            let mut last = 0usize;
            for &v in &values {
                let idx = bucket_index(v);
                proptest::prop_assert!(idx >= last, "index regressed at {v}");
                proptest::prop_assert!(idx < BUCKETS);
                proptest::prop_assert!(bucket_floor(idx) <= v);
                last = idx;
            }
        }

        /// Quantile bounds under arbitrary sample streams:
        /// p50 ≤ p95 ≤ p99 ≤ max, and every quantile lower-bounds max.
        #[test]
        fn quantiles_are_ordered_for_arbitrary_streams(
            values in proptest::collection::vec(0u64..10_000_000, 1..256)
        ) {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
            proptest::prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
            proptest::prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
            proptest::prop_assert!(p99 <= h.max(), "p99 {p99} > max {}", h.max());
            proptest::prop_assert_eq!(h.max(), *values.iter().max().unwrap());
            proptest::prop_assert_eq!(h.count(), values.len() as u64);
        }

        /// Merge associativity: (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) agree on
        /// every observable (counts, buckets, quantiles, mean, max).
        #[test]
        fn merge_is_associative(
            xs in proptest::collection::vec(0u64..1_000_000, 0..64),
            ys in proptest::collection::vec(0u64..1_000_000, 0..64),
            zs in proptest::collection::vec(0u64..1_000_000, 0..64),
        ) {
            let build = |vals: &[u64]| {
                let mut h = LatencyHistogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let (a, b, c) = (build(&xs), build(&ys), build(&zs));
            // Left fold: (a ⊕ b) ⊕ c.
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // Right fold: a ⊕ (b ⊕ c).
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            proptest::prop_assert_eq!(left.count(), right.count());
            proptest::prop_assert_eq!(left.max(), right.max());
            proptest::prop_assert_eq!(left.mean(), right.mean());
            for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
                proptest::prop_assert_eq!(left.quantile(q), right.quantile(q));
            }
        }
    }

    #[test]
    fn percentile_sorted_matches_openloop_definition() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_sorted(&v, 0.50), 50.0);
        assert_eq!(percentile_sorted(&v, 0.99), 99.0);
        assert_eq!(percentile_sorted(&v, 1.0), 100.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }
}
