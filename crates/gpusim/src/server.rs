//! Server configurations and multi-GPU sweep helpers.

use dnn::zoo::App;
use perf::GpuSpec;
use serde::{Deserialize, Serialize};

use crate::engine::{simulate, SimResult};
use crate::workload::ServiceWorkload;

/// How concurrent CUDA processes share a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConcurrencyMode {
    /// NVIDIA Multi-Process Service: kernels from different processes
    /// co-run from a shared resource pool (§5.2).
    Mps,
    /// Default CUDA behaviour: processes time-share the device with a
    /// context switch between them.
    Timeshared,
}

/// A GPU server: one host with `num_gpus` devices, a finite host I/O
/// bandwidth, and a process concurrency mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// GPU model installed in every slot.
    pub gpu: GpuSpec,
    /// Number of GPUs (the paper's server holds 8 K40s, Table 2).
    pub num_gpus: usize,
    /// Concurrency mode.
    pub mode: ConcurrencyMode,
    /// Aggregate host I/O bandwidth per direction, GB/s — DMA from host
    /// memory into the PCIe complex. A 2013 dual-socket DDR3-1866 host
    /// sustains roughly 20 GB/s of streaming PCIe DMA alongside the CPUs'
    /// own traffic (QPI crossings and ECC overhead included), which is
    /// what makes the NLP services plateau near 4 GPUs in Fig 11.
    pub host_io_gbps: f64,
    /// Context-switch penalty between processes without MPS, seconds.
    pub context_switch_s: f64,
}

impl ServerConfig {
    /// The paper's 8-way K40 server (Table 2), with `num_gpus` populated.
    pub fn k40_server(num_gpus: usize) -> Self {
        ServerConfig {
            gpu: GpuSpec::k40(),
            num_gpus,
            mode: ConcurrencyMode::Mps,
            host_io_gbps: 20.0,
            context_switch_s: 25e-6,
        }
    }

    /// Returns the config with a different concurrency mode.
    pub fn with_mode(mut self, mode: ConcurrencyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns the config with a different host I/O bandwidth (used by the
    /// Fig 16 interconnect upgrades).
    pub fn with_host_io_gbps(mut self, gbps: f64) -> Self {
        self.host_io_gbps = gbps;
        self
    }
}

/// Simulates the standard configuration used throughout §5.3–§6: one app,
/// `instances_per_gpu` MPS service instances on each of `num_gpus` GPUs,
/// each batching `batch_queries` queries.
///
/// # Errors
///
/// Propagates workload-construction failures.
pub fn standard_server_result(
    cfg: &ServerConfig,
    app: App,
    instances_per_gpu: usize,
    batch_queries: usize,
    pinned: bool,
) -> dnn::Result<SimResult> {
    let mut instances = Vec::with_capacity(cfg.num_gpus * instances_per_gpu);
    for g in 0..cfg.num_gpus {
        for _ in 0..instances_per_gpu {
            let w = ServiceWorkload::for_app(&cfg.gpu, app, batch_queries)?;
            let w = if pinned { w.pinned() } else { w };
            instances.push((w, g));
        }
    }
    // Enough batches for the steady state to dominate the transient.
    let batches = 30;
    Ok(simulate(cfg, &instances, batches))
}

/// Sweeps the GPU count (Figs 11 and 12), returning `(gpus, qps)` pairs.
///
/// # Errors
///
/// Propagates workload-construction failures.
pub fn server_sweep(
    base: &ServerConfig,
    app: App,
    gpu_counts: &[usize],
    instances_per_gpu: usize,
    pinned: bool,
) -> dnn::Result<Vec<(usize, f64)>> {
    let batch = app.service_meta().batch_size;
    gpu_counts
        .iter()
        .map(|&g| {
            let cfg = ServerConfig {
                num_gpus: g,
                ..base.clone()
            };
            let r = standard_server_result(&cfg, app, instances_per_gpu, batch, pinned)?;
            Ok((g, r.qps))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nlp_plateaus_with_gpu_count_but_not_when_pinned() {
        // Fig 11 vs Fig 12: the NLP plateau is a bandwidth artifact.
        let base = ServerConfig::k40_server(1);
        let limited = server_sweep(&base, App::Pos, &[1, 4, 8], 4, false).unwrap();
        let pinned = server_sweep(&base, App::Pos, &[1, 4, 8], 4, true).unwrap();
        let lim_scale = limited[2].1 / limited[0].1;
        let pin_scale = pinned[2].1 / pinned[0].1;
        assert!(lim_scale < 6.0, "limited 8-GPU scaling {lim_scale}");
        assert!(pin_scale > 6.5, "pinned 8-GPU scaling {pin_scale}");
    }

    #[test]
    fn image_and_asr_scale_near_linearly() {
        // Fig 11: compute-heavy services scale with GPUs under PCIe v3.
        let base = ServerConfig::k40_server(1);
        for app in [App::Imc, App::Asr] {
            let sweep = server_sweep(&base, app, &[1, 8], 4, false).unwrap();
            let scale = sweep[1].1 / sweep[0].1;
            assert!(scale > 6.5, "{app} 8-GPU scaling {scale}");
        }
    }

    #[test]
    fn sweep_is_monotone() {
        let base = ServerConfig::k40_server(1);
        let sweep = server_sweep(&base, App::Chk, &[1, 2, 4, 8], 4, false).unwrap();
        for pair in sweep.windows(2) {
            assert!(pair[1].1 >= pair[0].1 * 0.98, "{pair:?}");
        }
    }
}
