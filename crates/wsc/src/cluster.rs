//! Serving-tier provisioning: turns *measured* `djinn-router` and
//! replica throughput into a warehouse-scale bill of materials and its
//! lifetime cost.
//!
//! The paper's §6 study provisions compute from per-model device
//! throughput; this module adds the tier the scale-out router makes
//! real: given what one replica and one router process actually sustain
//! (from `results/router_bench.txt`, not a model), how many of each does
//! a target aggregate load need, and what does that tier cost over the
//! server lifetime?
//!
//! The mapping to the paper's Table 4 hardware classes: a **replica** is
//! a beefy server (optionally with GPUs — the paper's DjiNN instances
//! are GPU-backed), a **router** is a wimpy server (it only shuffles
//! frames; the measured forwarding path is memcpy + an 8-byte ID patch,
//! no DNN math), and every box gets a 10GbE NIC with its share of the
//! switch folded in.

use serde::{Deserialize, Serialize};

use crate::tco::{CostBreakdown, TcoParams};

/// Measured single-process throughput of the two serving-tier roles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingTierMeasurement {
    /// Saturated throughput of one replica, requests/second.
    pub replica_rps: f64,
    /// Forwarding capacity of one router process, requests/second.
    pub router_rps: f64,
}

/// A provisioned serving tier: how many replicas and routers a target
/// load needs, and what the fleet costs over the TCO lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingTierPlan {
    /// Aggregate load the tier is provisioned for, requests/second.
    pub target_rps: f64,
    /// Planned utilization of each box at the target load (provisioning
    /// at 1.0 leaves no headroom for skew, failures, or diurnal peaks).
    pub utilization: f64,
    /// Replica count (fractional — continuous-capacity planning, like
    /// the §6 study).
    pub replicas: f64,
    /// Router count.
    pub routers: f64,
    /// GPUs attached to each replica.
    pub gpus_per_replica: f64,
    /// Lifetime cost of the tier.
    pub cost: CostBreakdown,
}

impl ServingTierPlan {
    /// Provisions a serving tier for `target_rps`, planning each box at
    /// `utilization` of its measured capacity.
    ///
    /// # Panics
    ///
    /// Panics if either measured throughput or `utilization` is not
    /// positive — a plan built from an unmeasured tier is meaningless.
    pub fn provision(
        params: &TcoParams,
        measured: &ServingTierMeasurement,
        target_rps: f64,
        utilization: f64,
        gpus_per_replica: f64,
    ) -> Self {
        assert!(
            measured.replica_rps > 0.0 && measured.router_rps > 0.0,
            "serving-tier capacities must be measured, positive numbers"
        );
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        let replicas = target_rps / (measured.replica_rps * utilization);
        let routers = target_rps / (measured.router_rps * utilization);
        let gpus = replicas * gpus_per_replica;
        // Replicas are beefy servers, routers wimpy; one NIC per box.
        let cost =
            CostBreakdown::from_bom(params, replicas, routers, gpus, replicas + routers, 0.0);
        ServingTierPlan {
            target_rps,
            utilization,
            replicas,
            routers,
            gpus_per_replica,
            cost,
        }
    }

    /// Lifetime cost per million served requests, assuming the tier runs
    /// at its target load for the whole TCO lifetime.
    pub fn cost_per_million_requests(&self, params: &TcoParams) -> f64 {
        let lifetime_secs = params.lifetime_months * 30.4 * 24.0 * 3600.0;
        let served = self.target_rps * lifetime_secs;
        self.cost.total() / (served / 1e6)
    }

    /// Replicas per router — how much compute one front-end process
    /// fronts. Below ~1 the router is the bottleneck of its own tier.
    pub fn replicas_per_router(&self) -> f64 {
        self.replicas / self.routers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured() -> ServingTierMeasurement {
        ServingTierMeasurement {
            replica_rps: 2_500.0,
            router_rps: 20_000.0,
        }
    }

    #[test]
    fn provisioning_scales_linearly_with_target_load() {
        let p = TcoParams::paper();
        let small = ServingTierPlan::provision(&p, &measured(), 10_000.0, 0.7, 1.0);
        let large = ServingTierPlan::provision(&p, &measured(), 100_000.0, 0.7, 1.0);
        assert!((large.replicas / small.replicas - 10.0).abs() < 1e-9);
        assert!((large.routers / small.routers - 10.0).abs() < 1e-9);
        assert!(large.cost.total() > 9.0 * small.cost.total());
        // Cost per request is scale-free in the continuous model.
        let small_cpm = small.cost_per_million_requests(&p);
        let large_cpm = large.cost_per_million_requests(&p);
        assert!((small_cpm / large_cpm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn faster_routers_mean_fewer_routers_than_replicas() {
        let p = TcoParams::paper();
        let plan = ServingTierPlan::provision(&p, &measured(), 50_000.0, 0.7, 1.0);
        // Router forwards 8x what a replica serves, so the fleet needs
        // 8x fewer routers.
        assert!((plan.replicas_per_router() - 8.0).abs() < 1e-9);
        assert!(plan.routers < plan.replicas);
    }

    #[test]
    fn headroom_costs_hardware() {
        let p = TcoParams::paper();
        let tight = ServingTierPlan::provision(&p, &measured(), 50_000.0, 1.0, 1.0);
        let slack = ServingTierPlan::provision(&p, &measured(), 50_000.0, 0.5, 1.0);
        assert!((slack.replicas / tight.replicas - 2.0).abs() < 1e-9);
        assert!(slack.cost.total() > tight.cost.total());
    }

    #[test]
    fn cpu_only_replicas_carry_no_gpu_cost() {
        let p = TcoParams::paper();
        let cpu = ServingTierPlan::provision(&p, &measured(), 50_000.0, 0.7, 0.0);
        let gpu = ServingTierPlan::provision(&p, &measured(), 50_000.0, 0.7, 1.0);
        assert_eq!(cpu.cost.gpus, 0.0);
        assert!(gpu.cost.gpus > 0.0);
        assert!(gpu.cost.total() > cpu.cost.total());
    }
}
