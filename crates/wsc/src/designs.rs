//! The three WSC organizations (Fig 14) and the provisioning model that
//! sizes each one to a common throughput target (§6.3 methodology).
//!
//! Model summary (continuous capacity, 500-leaf-node scale):
//!
//! * the workload is a fraction `f` of DNN-service load and `1-f` of
//!   non-DNN webservices; non-DNN is served by identical beefy CPU
//!   servers in every design and the DNN share is split equally among the
//!   mix's applications (the paper's example: 70% MIXED = 10% per
//!   service);
//! * `CPU Only` uses 500 beefy servers; the throughput each DNN service
//!   gets from its share of those servers becomes the design target;
//! * `Integrated GPU` serves DNN load from beefy servers with 12 GPUs
//!   each. A server's service throughput is capped by the CPU→GPU feed
//!   bandwidth (PCIe complex), so bandwidth-bound services strand GPUs —
//!   the integrated design's inefficiency;
//! * `Disaggregated GPU` serves DNN load from wimpy GPU boxes that hold
//!   only as many GPUs as they can feed, but pays for the NIC fabric on
//!   both sides of the network hop.
//!
//! Pre/post-processing capacity is not provisioned here (the paper's
//! study targets the DNN service itself); the `bench` crate's
//! `ablation_provisioning` experiment quantifies how including it
//! compresses the TCO gains.

use dnn::zoo::App;
use serde::{Deserialize, Serialize};

use crate::{AppPerfDb, CostBreakdown, NetworkTech, TcoParams};

/// Leaf servers in the reference CPU-only WSC (paper §6.3).
pub const WSC_SERVERS: f64 = 500.0;
/// GPUs per integrated server (paper §6.2: 12 PCIe ×16 slots).
pub const GPUS_PER_INTEGRATED: f64 = 12.0;
/// Maximum GPUs a disaggregated box can hold.
pub const GPUS_PER_BOX: f64 = 12.0;

/// The three WSC designs of Fig 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WscDesign {
    /// Homogeneous beefy CPU servers only.
    CpuOnly,
    /// Beefy CPU servers with 12 integrated GPUs each.
    IntegratedGpu,
    /// Beefy CPU servers plus wimpy GPU boxes behind the network.
    DisaggregatedGpu,
}

impl WscDesign {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            WscDesign::CpuOnly => "CPU Only",
            WscDesign::IntegratedGpu => "Integrated GPU",
            WscDesign::DisaggregatedGpu => "Disaggregated GPU",
        }
    }
}

/// DNN service workload mixes (paper Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mix {
    /// All seven services.
    Mixed,
    /// IMC, DIG, FACE.
    Image,
    /// POS, CHK, NER.
    Nlp,
}

impl Mix {
    /// The applications in this mix.
    pub fn apps(&self) -> &'static [App] {
        match self {
            Mix::Mixed => &App::ALL,
            Mix::Image => &App::IMAGE,
            Mix::Nlp => &App::NLP,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Mix::Mixed => "MIXED",
            Mix::Image => "IMAGE",
            Mix::Nlp => "NLP",
        }
    }
}

/// A provisioned WSC and its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisionResult {
    /// Which design was provisioned.
    pub design: WscDesign,
    /// Beefy CPU servers (non-DNN pool plus integrated GPU servers).
    pub beefy_servers: f64,
    /// Wimpy GPU-box chassis.
    pub wimpy_servers: f64,
    /// GPUs installed.
    pub gpus: f64,
    /// Network cost in 10GbE-NIC units.
    pub nic_units: f64,
    /// Extra interconnect hardware, dollars.
    pub extra_hw: f64,
    /// Lifetime cost decomposition.
    pub breakdown: CostBreakdown,
}

impl ProvisionResult {
    /// Total lifetime TCO, dollars.
    pub fn tco_total(&self) -> f64 {
        self.breakdown.total()
    }
}

/// Per-service throughput target: the QPS each app receives from its
/// share of the CPU-only WSC at DNN fraction `f`.
fn targets(mix: Mix, f: f64, db: &AppPerfDb) -> Vec<(App, f64)> {
    let apps = mix.apps();
    let share_servers = f * WSC_SERVERS / apps.len() as f64;
    apps.iter()
        .map(|&a| (a, share_servers * db.get(a).qps_per_cpu_server))
        .collect()
}

/// Throughput one integrated 12-GPU server sustains for `app`: GPU
/// compute capped by both the CPU→GPU feed bandwidth (PCIe complex) and
/// the server's network ingestion bandwidth.
fn integrated_server_qps(app: App, db: &AppPerfDb, tech: &NetworkTech) -> f64 {
    let p = db.get(app);
    (GPUS_PER_INTEGRATED * p.qps_per_gpu)
        .min(tech.internal_gbps * 1e9 / p.bytes_per_query)
        .min(tech.external_gbps * 1e9 / p.bytes_per_query)
        .min(tech.messages_per_sec)
}

/// Provisions one design for `mix` at DNN fraction `dnn_fraction` and
/// prices it.
///
/// # Panics
///
/// Panics if `dnn_fraction` is outside `[0, 1]`.
pub fn provision(
    design: WscDesign,
    mix: Mix,
    dnn_fraction: f64,
    db: &AppPerfDb,
    tech: &NetworkTech,
    params: &TcoParams,
) -> ProvisionResult {
    provision_with(design, mix, dnn_fraction, db, tech, params, false)
}

/// [`provision`] with an explicit choice about pre/post-processing: when
/// `include_prepost` is true, the GPU designs additionally buy beefy CPU
/// servers to run every DNN query's pre/post-processing (the paper's
/// headline TCO numbers provision the DNN service itself; this switch is
/// the `ablation_provisioning` experiment that shows how ASR's heavy
/// decode stage compresses the gains).
///
/// # Panics
///
/// Panics if `dnn_fraction` is outside `[0, 1]`.
pub fn provision_with(
    design: WscDesign,
    mix: Mix,
    dnn_fraction: f64,
    db: &AppPerfDb,
    tech: &NetworkTech,
    params: &TcoParams,
    include_prepost: bool,
) -> ProvisionResult {
    assert!(
        (0.0..=1.0).contains(&dnn_fraction),
        "dnn_fraction {dnn_fraction} outside [0,1]"
    );
    let mut non_dnn_servers = (1.0 - dnn_fraction) * WSC_SERVERS;
    if include_prepost && design != WscDesign::CpuOnly {
        for (app, target) in targets(mix, dnn_fraction, db) {
            let p = db.get(app);
            non_dnn_servers += target * p.prepost_s / crate::perfdb::CPU_SERVER_CORES as f64;
        }
    }
    let targets = targets(mix, dnn_fraction, db);

    let (beefy, wimpy, gpus, nic_units, extra_hw) = match design {
        WscDesign::CpuOnly => (WSC_SERVERS, 0.0, 0.0, 0.0, 0.0),
        WscDesign::IntegratedGpu => {
            let mut servers = 0.0;
            for &(app, target) in &targets {
                servers += target / integrated_server_qps(app, db, tech);
            }
            // Every integrated DNN server ingests queries through one
            // aggregated NIC set.
            let nic_units = tech.nic_units_per_device() * servers;
            (
                non_dnn_servers + servers,
                0.0,
                servers * GPUS_PER_INTEGRATED,
                nic_units,
                servers * tech.server_extra_cost,
            )
        }
        WscDesign::DisaggregatedGpu => {
            let mut boxes = 0.0;
            let mut gpus = 0.0;
            for &(app, target) in &targets {
                let p = db.get(app);
                let need_gpus = target / p.qps_per_gpu;
                let bw_boxes = (target * p.bytes_per_query / (tech.external_gbps * 1e9))
                    .max(target / tech.messages_per_sec);
                boxes += (need_gpus / GPUS_PER_BOX).max(bw_boxes);
                gpus += need_gpus;
            }
            // The extra network hop needs aggregated NIC sets on both
            // ends (CPU sender and GPU box), per the paper's 16x10GbE
            // fabric description.
            let nic_units = 2.0 * tech.nic_units_per_device() * boxes;
            (non_dnn_servers, boxes, gpus, nic_units, 0.0)
        }
    };
    let breakdown = CostBreakdown::from_bom(params, beefy, wimpy, gpus, nic_units, extra_hw);
    ProvisionResult {
        design,
        beefy_servers: beefy,
        wimpy_servers: wimpy,
        gpus,
        nic_units,
        extra_hw,
        breakdown,
    }
}

/// One Fig 16 design point: the throughput multiplier an interconnect
/// upgrade unlocks for the mix, and the matched-performance TCO of each
/// design.
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradeStudy {
    /// Technology evaluated.
    pub tech: NetworkTech,
    /// Workload-wide throughput multiplier over the PCIe v3/10GbE
    /// disaggregated baseline.
    pub perf_improvement: f64,
    /// TCO of each design scaled to match that performance (CPU-only is
    /// priced with the baseline network, per the paper).
    pub cpu_only: ProvisionResult,
    /// Matched integrated design with the upgraded interconnect.
    pub integrated: ProvisionResult,
    /// Matched disaggregated design with the upgraded network.
    pub disaggregated: ProvisionResult,
}

/// Runs the Fig 16 exercise for a workload composed entirely of `mix`.
pub fn network_upgrade_study(
    mix: Mix,
    tech: &NetworkTech,
    db: &AppPerfDb,
    params: &TcoParams,
) -> UpgradeStudy {
    let baseline = NetworkTech::pcie_v3_10gbe();
    // Per-app improvement: how much more a 12-GPU disaggregated box
    // delivers once the network stops capping it.
    let apps = mix.apps();
    let mut improvement = 0.0;
    for &app in apps {
        let p = db.get(app);
        let q = |t: &NetworkTech| {
            (GPUS_PER_BOX * p.qps_per_gpu)
                .min(t.external_gbps * 1e9 / p.bytes_per_query)
                .min(t.messages_per_sec)
        };
        improvement += q(tech) / q(&baseline);
    }
    improvement /= apps.len() as f64;

    // Scale every design to the improved throughput: the CPU-only and
    // integrated WSCs grow by the same factor (the paper scales servers
    // roughly in proportion for CPU-only).
    let scale = |mut r: ProvisionResult, factor: f64| {
        r.beefy_servers *= factor;
        r.wimpy_servers *= factor;
        r.gpus *= factor;
        r.nic_units *= factor;
        r.extra_hw *= factor;
        r.breakdown = CostBreakdown::from_bom(
            params,
            r.beefy_servers,
            r.wimpy_servers,
            r.gpus,
            r.nic_units,
            r.extra_hw,
        );
        r
    };
    let cpu_only = scale(
        provision(WscDesign::CpuOnly, mix, 1.0, db, &baseline, params),
        improvement,
    );
    let integrated = provision(WscDesign::IntegratedGpu, mix, 1.0, db, tech, params);
    let integrated = scale(
        integrated,
        improvement_ratio_for_design(improvement, tech, db, mix),
    );
    let disaggregated = provision_scaled_disagg(mix, improvement, db, tech, params);
    UpgradeStudy {
        tech: tech.clone(),
        perf_improvement: improvement,
        cpu_only,
        integrated,
        disaggregated,
    }
}

/// The integrated design at an upgraded interconnect serves the higher
/// target directly; its server count already reflects the better feed
/// bandwidth, so the residual scale factor is the target growth divided
/// by the per-server capability growth.
fn improvement_ratio_for_design(
    improvement: f64,
    tech: &NetworkTech,
    db: &AppPerfDb,
    mix: Mix,
) -> f64 {
    let baseline = NetworkTech::pcie_v3_10gbe();
    let apps = mix.apps();
    let mut cap_growth = 0.0;
    for &app in apps {
        cap_growth +=
            integrated_server_qps(app, db, tech) / integrated_server_qps(app, db, &baseline);
    }
    cap_growth /= apps.len() as f64;
    improvement / cap_growth
}

/// Disaggregated design provisioned for `improvement ×` the baseline
/// target under the upgraded network.
fn provision_scaled_disagg(
    mix: Mix,
    improvement: f64,
    db: &AppPerfDb,
    tech: &NetworkTech,
    params: &TcoParams,
) -> ProvisionResult {
    let mut r = provision(WscDesign::DisaggregatedGpu, mix, 1.0, db, tech, params);
    // Targets grew by `improvement`; re-size the BOM linearly.
    r.wimpy_servers *= improvement;
    r.gpus *= improvement;
    r.nic_units *= improvement;
    r.breakdown = CostBreakdown::from_bom(
        params,
        r.beefy_servers,
        r.wimpy_servers,
        r.gpus,
        r.nic_units,
        r.extra_hw,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn db() -> &'static AppPerfDb {
        static DB: OnceLock<AppPerfDb> = OnceLock::new();
        DB.get_or_init(|| AppPerfDb::build().unwrap())
    }

    fn ratio(design: WscDesign, mix: Mix, f: f64) -> f64 {
        let tech = NetworkTech::pcie_v3_10gbe();
        let params = TcoParams::paper();
        let cpu = provision(WscDesign::CpuOnly, mix, f, db(), &tech, &params);
        let other = provision(design, mix, f, db(), &tech, &params);
        cpu.tco_total() / other.tco_total()
    }

    #[test]
    fn mixed_workload_gpu_designs_win_big() {
        // Fig 15a: up to ~20x for the disaggregated design.
        let r = ratio(WscDesign::DisaggregatedGpu, Mix::Mixed, 1.0);
        assert!((4.0..40.0).contains(&r), "MIXED disaggregated gain {r}");
        let ri = ratio(WscDesign::IntegratedGpu, Mix::Mixed, 1.0);
        assert!(ri > 2.0, "MIXED integrated gain {ri}");
    }

    #[test]
    fn nlp_workload_gains_are_modest() {
        // Fig 15c: NLP maxes out around 4x because PCIe/network bandwidth
        // strands GPU capability.
        let r = ratio(WscDesign::DisaggregatedGpu, Mix::Nlp, 1.0);
        assert!((3.0..12.0).contains(&r), "NLP disaggregated gain {r}");
        let mixed = ratio(WscDesign::DisaggregatedGpu, Mix::Mixed, 1.0);
        assert!(mixed > r, "MIXED {mixed} must beat NLP {r}");
    }

    #[test]
    fn gains_shrink_toward_zero_dnn_share() {
        let hi = ratio(WscDesign::DisaggregatedGpu, Mix::Mixed, 0.9);
        let lo = ratio(WscDesign::DisaggregatedGpu, Mix::Mixed, 0.1);
        assert!(hi > lo, "hi {hi} lo {lo}");
        let near_zero = ratio(WscDesign::DisaggregatedGpu, Mix::Mixed, 0.001);
        assert!((0.9..1.2).contains(&near_zero), "f→0 ratio {near_zero}");
    }

    #[test]
    fn disaggregated_beats_integrated_for_nlp() {
        // Fig 15c: the integrated design strands most of its 12 GPUs on
        // bandwidth-bound NLP services.
        let tech = NetworkTech::pcie_v3_10gbe();
        let params = TcoParams::paper();
        let int = provision(
            WscDesign::IntegratedGpu,
            Mix::Nlp,
            1.0,
            db(),
            &tech,
            &params,
        );
        let dis = provision(
            WscDesign::DisaggregatedGpu,
            Mix::Nlp,
            1.0,
            db(),
            &tech,
            &params,
        );
        assert!(
            dis.tco_total() < int.tco_total(),
            "disagg {} vs integrated {}",
            dis.tco_total(),
            int.tco_total()
        );
        // And it does so with fewer GPUs.
        assert!(dis.gpus < int.gpus);
    }

    #[test]
    fn image_mix_integrated_catches_up() {
        // Fig 15b: for the IMAGE workload the integrated design closes the
        // gap (and crosses over) because image services use all 12 GPUs.
        let gap = |mix: Mix| {
            let tech = NetworkTech::pcie_v3_10gbe();
            let params = TcoParams::paper();
            let int = provision(WscDesign::IntegratedGpu, mix, 1.0, db(), &tech, &params);
            let dis = provision(WscDesign::DisaggregatedGpu, mix, 1.0, db(), &tech, &params);
            int.tco_total() / dis.tco_total()
        };
        assert!(
            gap(Mix::Image) < gap(Mix::Nlp),
            "IMAGE int/dis {} should be closer to 1 than NLP {}",
            gap(Mix::Image),
            gap(Mix::Nlp)
        );
    }

    #[test]
    fn network_upgrades_unlock_nlp_throughput() {
        // Fig 16b: improved bandwidth recovers large NLP performance with
        // modest TCO growth in the GPU designs.
        let params = TcoParams::paper();
        let v4 = network_upgrade_study(Mix::Nlp, &NetworkTech::pcie_v4_40gbe(), db(), &params);
        let qpi = network_upgrade_study(Mix::Nlp, &NetworkTech::qpi_400gbe(), db(), &params);
        assert!(v4.perf_improvement > 1.5, "v4 {}", v4.perf_improvement);
        assert!(
            qpi.perf_improvement > v4.perf_improvement,
            "qpi {} vs v4 {}",
            qpi.perf_improvement,
            v4.perf_improvement
        );
        // CPU-only must scale its cost roughly with performance…
        let base = provision(
            WscDesign::CpuOnly,
            Mix::Nlp,
            1.0,
            db(),
            &NetworkTech::pcie_v3_10gbe(),
            &params,
        );
        let cpu_growth = qpi.cpu_only.tco_total() / base.tco_total();
        assert!(cpu_growth > qpi.perf_improvement * 0.8);
        // …while the disaggregated design grows far more slowly.
        let dis_base = provision(
            WscDesign::DisaggregatedGpu,
            Mix::Nlp,
            1.0,
            db(),
            &NetworkTech::pcie_v3_10gbe(),
            &params,
        );
        let dis_growth = qpi.disaggregated.tco_total() / dis_base.tco_total();
        assert!(
            dis_growth < cpu_growth * 0.7,
            "disagg growth {dis_growth} vs cpu {cpu_growth}"
        );
    }
}
