//! Per-application performance inputs for the WSC study, computed once
//! from the calibrated models: CPU-server throughput, single-GPU
//! throughput (with Table 3 batching and 4 MPS instances), query payload
//! sizes, and pre/post-processing cost.

use dnn::profile::WorkloadProfile;
use dnn::zoo::{self, App};
use gpusim::{standard_server_result, ServerConfig};
use perf::CpuSpec;
use tonic_suite::fig4;

/// Cores per beefy CPU server (2 × 6-core Xeon E5-2620 v2, Table 2).
pub const CPU_SERVER_CORES: usize = 12;
/// MPS service instances per GPU (the §5.2 sweet spot).
pub const MPS_INSTANCES: usize = 4;

/// One application's performance characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppPerf {
    /// Which application.
    pub app: App,
    /// Queries/s one beefy CPU server sustains running the full
    /// application (pre + DNN + post on all cores).
    pub qps_per_cpu_server: f64,
    /// Queries/s one K40 sustains for the DNN portion (Table 3 batch,
    /// 4 MPS instances, no bandwidth ceiling beyond its own PCIe link).
    pub qps_per_gpu: f64,
    /// Bytes per query shipped to the DNN service (Table 3 input sizes).
    pub bytes_per_query: f64,
    /// CPU seconds of pre/post-processing per query (one core).
    pub prepost_s: f64,
}

/// Performance database for all seven applications.
#[derive(Debug, Clone, PartialEq)]
pub struct AppPerfDb {
    entries: Vec<AppPerf>,
}

impl AppPerfDb {
    /// Computes the database from the calibrated CPU model and the GPU
    /// server simulator. Takes a few hundred milliseconds.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn build() -> dnn::Result<Self> {
        let cpu = CpuSpec::xeon_e5_2620_v2();
        let mut entries = Vec::with_capacity(App::ALL.len());
        for app in App::ALL {
            let meta = app.service_meta();
            let breakdown = fig4::cycle_breakdown(&cpu, app);
            let per_core_s = breakdown.dnn_s + breakdown.pre_s + breakdown.post_s;
            let qps_per_cpu_server = CPU_SERVER_CORES as f64 / per_core_s;

            // One GPU, 4 MPS instances at the chosen batch size; pinned
            // inputs so the per-GPU figure reflects compute capability
            // (interconnect ceilings are applied by the design model).
            let cfg = ServerConfig::k40_server(1);
            let sim = standard_server_result(&cfg, app, MPS_INSTANCES, meta.batch_size, true)?;
            // Sanity floor: the profile is always non-trivial.
            let _ = WorkloadProfile::of(&zoo::netdef(app), meta.inputs_per_query)?;
            entries.push(AppPerf {
                app,
                qps_per_cpu_server,
                qps_per_gpu: sim.qps,
                bytes_per_query: meta.input_bytes(),
                prepost_s: breakdown.pre_s + breakdown.post_s,
            });
        }
        Ok(AppPerfDb { entries })
    }

    /// The entry for `app`.
    ///
    /// # Panics
    ///
    /// Never panics for the seven Tonic apps the database always holds.
    pub fn get(&self, app: App) -> &AppPerf {
        self.entries
            .iter()
            .find(|e| e.app == app)
            .expect("database holds all seven apps")
    }

    /// All entries.
    pub fn entries(&self) -> &[AppPerf] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_covers_all_apps_with_positive_numbers() {
        let db = AppPerfDb::build().unwrap();
        assert_eq!(db.entries().len(), 7);
        for e in db.entries() {
            assert!(e.qps_per_cpu_server > 0.0, "{:?}", e.app);
            assert!(e.qps_per_gpu > e.qps_per_cpu_server, "{:?}", e.app);
            assert!(e.bytes_per_query > 0.0);
        }
    }

    #[test]
    fn nlp_gpu_throughput_is_orders_of_magnitude_higher() {
        // §5.3: "the throughput (QPS) is several orders of magnitude
        // higher than the other two services."
        let db = AppPerfDb::build().unwrap();
        let pos = db.get(App::Pos).qps_per_gpu;
        let asr = db.get(App::Asr).qps_per_gpu;
        assert!(pos / asr > 100.0, "POS {pos} vs ASR {asr}");
    }
}
