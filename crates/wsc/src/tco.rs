//! The total-cost-of-ownership model (paper Table 4), following the
//! Barroso et al. methodology: hardware + facility capital expenditures
//! with financing, plus power and operations over the server lifetime.

use serde::{Deserialize, Serialize};

/// Cost factors (paper Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcoParams {
    /// 300 W GPU-capable (beefy) server, dollars.
    pub beefy_server_cost: f64,
    /// Beefy server power, watts.
    pub beefy_server_w: f64,
    /// High-end 240 W GPU, dollars.
    pub gpu_cost: f64,
    /// GPU power, watts.
    pub gpu_w: f64,
    /// 75 W wimpy server, dollars.
    pub wimpy_server_cost: f64,
    /// Wimpy server power, watts.
    pub wimpy_server_w: f64,
    /// Networking equipment, dollars per 10GbE NIC (switch share folded
    /// in, per the paper's 500-leaf-node estimate).
    pub nic_cost: f64,
    /// WSC capital expenditure, dollars per watt of capacity.
    pub facility_capex_per_w: f64,
    /// Operational expenditure, dollars per watt per month.
    pub opex_per_w_month: f64,
    /// Power usage efficiency.
    pub pue: f64,
    /// Electricity, dollars per kWh.
    pub electricity_per_kwh: f64,
    /// Annual interest rate on capital expenditures.
    pub interest_rate: f64,
    /// Server lifetime and loan amortization period, months.
    pub lifetime_months: f64,
    /// Server maintenance/operations, fraction of monthly hardware
    /// amortization per month.
    pub maintenance_monthly: f64,
}

impl TcoParams {
    /// The paper's Table 4 values.
    pub fn paper() -> Self {
        TcoParams {
            beefy_server_cost: 6864.0,
            beefy_server_w: 300.0,
            gpu_cost: 3314.0,
            gpu_w: 240.0,
            wimpy_server_cost: 1716.0,
            wimpy_server_w: 75.0,
            nic_cost: 750.0,
            facility_capex_per_w: 10.0,
            opex_per_w_month: 0.04,
            pue: 1.1,
            electricity_per_kwh: 0.067,
            interest_rate: 0.08,
            lifetime_months: 36.0,
            maintenance_monthly: 0.05,
        }
    }

    /// Financing multiplier: total paid over the amortization period per
    /// dollar borrowed (standard annuity at the Table 4 interest rate).
    pub fn financing_factor(&self) -> f64 {
        let r = self.interest_rate / 12.0;
        let n = self.lifetime_months;
        if r == 0.0 {
            return 1.0;
        }
        let monthly = r * (1.0 + r).powf(n) / ((1.0 + r).powf(n) - 1.0);
        monthly * n
    }
}

impl Default for TcoParams {
    fn default() -> Self {
        TcoParams::paper()
    }
}

/// A WSC bill of materials and its lifetime cost decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Server chassis capex (beefy + wimpy), dollars.
    pub servers: f64,
    /// GPU capex, dollars.
    pub gpus: f64,
    /// Networking capex (NICs + switch share), dollars.
    pub network: f64,
    /// Facility capex ($/W of provisioned power), dollars.
    pub facility: f64,
    /// Lifetime electricity + per-watt opex, dollars.
    pub power_opex: f64,
    /// Lifetime maintenance, dollars.
    pub maintenance: f64,
}

impl CostBreakdown {
    /// Builds the lifetime cost from a bill of materials.
    ///
    /// `beefy`/`wimpy`/`gpus`/`nics` are unit counts (fractional units are
    /// allowed — the provisioning model works in continuous capacity);
    /// `extra_hw` is additional hardware capex such as interconnect
    /// upgrades.
    pub fn from_bom(
        params: &TcoParams,
        beefy: f64,
        wimpy: f64,
        gpus: f64,
        nics: f64,
        extra_hw: f64,
    ) -> Self {
        let fin = params.financing_factor();
        let servers =
            (beefy * params.beefy_server_cost + wimpy * params.wimpy_server_cost + extra_hw) * fin;
        let gpus_cost = gpus * params.gpu_cost * fin;
        let network = nics * params.nic_cost * fin;
        let watts =
            beefy * params.beefy_server_w + wimpy * params.wimpy_server_w + gpus * params.gpu_w;
        let facility = watts * params.pue * params.facility_capex_per_w * fin;
        let kwh_lifetime = watts * params.pue / 1000.0 * 24.0 * 30.4 * params.lifetime_months;
        let power_opex = kwh_lifetime * params.electricity_per_kwh
            + watts * params.opex_per_w_month * params.lifetime_months;
        let hw = beefy * params.beefy_server_cost
            + wimpy * params.wimpy_server_cost
            + gpus * params.gpu_cost
            + nics * params.nic_cost
            + extra_hw;
        let maintenance =
            hw / params.lifetime_months * params.maintenance_monthly * params.lifetime_months;
        CostBreakdown {
            servers,
            gpus: gpus_cost,
            network,
            facility,
            power_opex,
            maintenance,
        }
    }

    /// Total lifetime cost, dollars.
    pub fn total(&self) -> f64 {
        self.servers + self.gpus + self.network + self.facility + self.power_opex + self.maintenance
    }

    /// Component-wise sum of two breakdowns.
    pub fn add(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            servers: self.servers + other.servers,
            gpus: self.gpus + other.gpus,
            network: self.network + other.network,
            facility: self.facility + other.facility,
            power_opex: self.power_opex + other.power_opex,
            maintenance: self.maintenance + other.maintenance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn financing_factor_is_reasonable() {
        let p = TcoParams::paper();
        let f = p.financing_factor();
        // 8% APR over 3 years costs ~13% extra.
        assert!((1.10..1.16).contains(&f), "financing factor {f}");
    }

    #[test]
    fn breakdown_total_sums_components() {
        let p = TcoParams::paper();
        let b = CostBreakdown::from_bom(&p, 10.0, 2.0, 24.0, 32.0, 1000.0);
        let total = b.servers + b.gpus + b.network + b.facility + b.power_opex + b.maintenance;
        assert!((b.total() - total).abs() < 1e-9);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn gpus_dominate_an_all_gpu_bom() {
        let p = TcoParams::paper();
        let b = CostBreakdown::from_bom(&p, 1.0, 0.0, 12.0, 0.0, 0.0);
        assert!(b.gpus > b.servers);
    }

    #[test]
    fn power_costs_scale_with_watts() {
        let p = TcoParams::paper();
        let small = CostBreakdown::from_bom(&p, 1.0, 0.0, 0.0, 0.0, 0.0);
        let large = CostBreakdown::from_bom(&p, 10.0, 0.0, 0.0, 0.0, 0.0);
        assert!((large.power_opex / small.power_opex - 10.0).abs() < 1e-6);
    }

    #[test]
    fn zero_interest_means_no_financing_markup() {
        let p = TcoParams {
            interest_rate: 0.0,
            ..TcoParams::paper()
        };
        assert_eq!(p.financing_factor(), 1.0);
    }
}
