//! Warehouse-scale-computer design study for a DNN service (§6 of the
//! paper): bandwidth requirements (Fig 13), three WSC organizations
//! (Fig 14), a total-cost-of-ownership model (Table 4, Fig 15), and the
//! network/interconnect upgrade study (Table 6, Fig 16).
//!
//! The methodology mirrors the paper's: provision a `CPU Only` WSC for a
//! given workload mix, read off per-service throughput targets, build the
//! `Integrated GPU` and `Disaggregated GPU` designs to match those
//! targets, and compare 3-year TCO (hardware + facility capex, financing,
//! power, operations).
//!
//! # Quickstart
//!
//! ```no_run
//! use wsc::{AppPerfDb, Mix, WscDesign, provision, NetworkTech, TcoParams};
//!
//! let db = AppPerfDb::build()?;
//! let tech = NetworkTech::pcie_v3_10gbe();
//! let params = TcoParams::paper();
//! let cpu = provision(WscDesign::CpuOnly, Mix::Mixed, 0.7, &db, &tech, &params);
//! let dis = provision(WscDesign::DisaggregatedGpu, Mix::Mixed, 0.7, &db, &tech, &params);
//! println!("TCO ratio: {:.1}x", cpu.tco_total() / dis.tco_total());
//! # Ok::<(), dnn::DnnError>(())
//! ```

pub mod bandwidth;
mod cluster;
mod designs;
mod interconnect;
mod perfdb;
mod tco;

pub use cluster::{ServingTierMeasurement, ServingTierPlan};
pub use designs::{
    network_upgrade_study, provision, provision_with, Mix, ProvisionResult, UpgradeStudy, WscDesign,
};
pub use interconnect::NetworkTech;
pub use perfdb::{AppPerf, AppPerfDb};
pub use tco::{CostBreakdown, TcoParams};
