//! Interconnect and network technology configurations (paper Table 6).

use serde::{Deserialize, Serialize};

/// One CPU↔GPU interconnect + server-network design point.
///
/// `internal_gbps` is the aggregate bandwidth available to feed a server's
/// GPUs (the PCIe complex or QPI links); `external_gbps` is the server's
/// network attachment, already derated by the paper's 20% ethernet
/// protocol overhead assumption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTech {
    /// Display name.
    pub name: String,
    /// Aggregate CPU→GPU feed bandwidth per server, GB/s.
    pub internal_gbps: f64,
    /// Effective server network bandwidth, GB/s.
    pub external_gbps: f64,
    /// NICs per network-attached device (each priced at the Table 4
    /// per-NIC estimate, scaled by `nic_price_factor`).
    pub nics_per_device: f64,
    /// Price of one of this generation's NICs relative to a 10GbE NIC.
    pub nic_price_factor: f64,
    /// Extra per-server hardware cost of the interconnect upgrade,
    /// dollars (PCIe v4 retimers / QPI fabric, the paper's projections).
    pub server_extra_cost: f64,
    /// Sustainable request messages per second per device: the paper-era
    /// kernel network stack bounds small-payload services (NLP's 38-75 KB
    /// queries) well before link bytes do. Later generations assume
    /// offload/kernel-bypass improvements.
    pub messages_per_sec: f64,
}

impl NetworkTech {
    /// Baseline: PCIe v3 ×16 GPUs and 16 teamed 10GbE NICs per device
    /// (16 × 1.25 GB/s × 80% = 16 GB/s effective).
    pub fn pcie_v3_10gbe() -> Self {
        NetworkTech {
            name: "PCIeV3/10GbE".into(),
            internal_gbps: 20.0,
            external_gbps: 16.0,
            nics_per_device: 16.0,
            nic_price_factor: 1.0,
            server_extra_cost: 0.0,
            messages_per_sec: 150e3,
        }
    }

    /// Cutting edge: PCIe v4 (31.75 GB/s per link, doubled host complex)
    /// and 9 teamed 40GbE connections (9 × 5 GB/s × 80% = 36 GB/s).
    pub fn pcie_v4_40gbe() -> Self {
        NetworkTech {
            name: "PCIeV4/40GbE".into(),
            internal_gbps: 40.0,
            external_gbps: 36.0,
            nics_per_device: 9.0,
            nic_price_factor: 2.0,
            server_extra_cost: 500.0,
            messages_per_sec: 300e3,
        }
    }

    /// Near future: QPI links to the GPUs (12 × 25.6 GB/s = 307.2 GB/s)
    /// and 8 teamed 400GbE connections (8 × 50 GB/s × 80% = 320 GB/s).
    pub fn qpi_400gbe() -> Self {
        NetworkTech {
            name: "QPI/400GbE".into(),
            internal_gbps: 307.2,
            external_gbps: 320.0,
            nics_per_device: 8.0,
            nic_price_factor: 4.0,
            server_extra_cost: 2000.0,
            messages_per_sec: 650e3,
        }
    }

    /// The three Table 6 design points in ascending capability.
    pub fn all() -> Vec<NetworkTech> {
        vec![
            NetworkTech::pcie_v3_10gbe(),
            NetworkTech::pcie_v4_40gbe(),
            NetworkTech::qpi_400gbe(),
        ]
    }

    /// Network cost per network-attached device in 10GbE-NIC units.
    pub fn nic_units_per_device(&self) -> f64 {
        self.nics_per_device * self.nic_price_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_and_price_both_ascend() {
        let all = NetworkTech::all();
        for pair in all.windows(2) {
            assert!(pair[1].external_gbps > pair[0].external_gbps);
            assert!(pair[1].internal_gbps > pair[0].internal_gbps);
            assert!(pair[1].messages_per_sec > pair[0].messages_per_sec);
            assert!(
                pair[1].nic_units_per_device() + pair[1].server_extra_cost / 750.0
                    > pair[0].nic_units_per_device()
            );
        }
    }

    #[test]
    fn baseline_matches_paper_footnote() {
        // Footnote 1: 16 x 1.25 GB/s at 80% of theoretical peak = 16 GB/s.
        let t = NetworkTech::pcie_v3_10gbe();
        assert!((t.external_gbps - 16.0).abs() < 1e-9);
    }

    #[test]
    fn qpi_matches_table6_aggregate() {
        // 12 QPI links x 25.6 GB/s = 307.2 GB/s.
        let t = NetworkTech::qpi_400gbe();
        assert!((t.internal_gbps - 307.2).abs() < 1e-9);
    }
}
