//! Bandwidth requirements for peak throughput (paper §6.1, Fig 13):
//! the network bandwidth each application needs to keep `n` GPUs at their
//! unconstrained (pinned-input) throughput.

use dnn::zoo::App;

use crate::AppPerfDb;

/// Reference line: PCIe v3 ×16 peak, GB/s (paper Fig 13).
pub const PCIE_V3_GBPS: f64 = 15.875;
/// Reference line: 10GbE theoretical peak, GB/s (paper Fig 13).
pub const TEN_GBE_GBPS: f64 = 1.25;

/// Bandwidth (GB/s) required to sustain `gpus` fully-fed GPUs for `app`.
pub fn required_gbps(db: &AppPerfDb, app: App, gpus: usize) -> f64 {
    let p = db.get(app);
    gpus as f64 * p.qps_per_gpu * p.bytes_per_query / 1e9
}

/// The Fig 13 sweep: for each GPU count, the per-app bandwidth demand.
pub fn sweep(db: &AppPerfDb, gpu_counts: &[usize]) -> Vec<(App, Vec<(usize, f64)>)> {
    App::ALL
        .iter()
        .map(|&app| {
            let series = gpu_counts
                .iter()
                .map(|&g| (g, required_gbps(db, app, g)))
                .collect();
            (app, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn db() -> &'static AppPerfDb {
        static DB: OnceLock<AppPerfDb> = OnceLock::new();
        DB.get_or_init(|| AppPerfDb::build().unwrap())
    }

    #[test]
    fn nlp_demand_dwarfs_compute_heavy_demand() {
        // Fig 13: light-computation NLP tasks need far more bandwidth per
        // GPU than the compute-heavy tasks.
        for nlp in App::NLP {
            for heavy in [App::Imc, App::Face, App::Asr] {
                assert!(
                    required_gbps(db(), nlp, 8) > 2.0 * required_gbps(db(), heavy, 8),
                    "{nlp} vs {heavy}"
                );
            }
        }
    }

    #[test]
    fn compute_heavy_tasks_fit_modest_networks() {
        // Fig 13 / §6.1: ~4 GB/s suffices for the computation-heavy tasks
        // even at 8 GPUs.
        for app in [App::Imc, App::Face, App::Asr] {
            let need = required_gbps(db(), app, 8);
            assert!(need < 10.0, "{app} needs {need} GB/s");
        }
        // Our DIG lands modestly above the paper's band (its 100-image
        // queries are bandwidth-hungrier in this model) but still an
        // order of magnitude below the NLP demand.
        assert!(required_gbps(db(), App::Dig, 8) < 25.0);
    }

    #[test]
    fn nlp_exceeds_pcie_within_a_few_gpus() {
        // The NLP plateau of Fig 11: demand crosses the PCIe v3 line well
        // before 8 GPUs.
        let mut crossed = false;
        for g in 1..=8 {
            if required_gbps(db(), App::Pos, g) > PCIE_V3_GBPS {
                assert!(g <= 4, "POS crosses PCIe v3 only at {g} GPUs");
                crossed = true;
                break;
            }
        }
        assert!(crossed, "POS never crossed the PCIe v3 line");
    }

    #[test]
    fn demand_scales_linearly_with_gpus() {
        let one = required_gbps(db(), App::Chk, 1);
        let eight = required_gbps(db(), App::Chk, 8);
        assert!((eight / one - 8.0).abs() < 1e-9);
    }
}
