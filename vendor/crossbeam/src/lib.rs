//! Offline stub of `crossbeam`.
//!
//! Only the `channel` module is provided, as a thin facade over
//! `std::sync::mpsc`: `bounded` maps to `sync_channel`, which has the same
//! blocking-when-full and rendezvous-at-capacity-zero semantics the
//! workspace relies on. `SyncSender` is `Sync`, so senders can be shared by
//! reference across worker threads exactly like crossbeam's. See
//! `vendor/README.md`.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a bounded channel (crossbeam's `Sender`).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Receiving half of a bounded channel (crossbeam's `Receiver`).
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates a bounded channel; capacity 0 is a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip_and_timeout() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn senders_clone_and_share() {
        let (tx, rx) = bounded::<u32>(8);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
        });
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
