//! Offline stub of `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation-of-intent — no serializer crate (serde_json, bincode, ...)
//! is a dependency, so the derived impls are never exercised. These no-op
//! derives let the workspace compile in the network-isolated build
//! container. See `vendor/README.md` for the swap-back story.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
