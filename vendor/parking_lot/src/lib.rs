//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, recovering from poisoning instead
//! of returning a `Result`. See `vendor/README.md`.

/// Poison-free mutex with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
