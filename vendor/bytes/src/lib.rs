//! Offline stub of `bytes`.
//!
//! Provides `BytesMut` (a growable byte buffer), `BufMut` little-endian
//! writers, and `Buf` little-endian readers for `&[u8]` — the exact subset
//! the DjiNN wire protocol uses. See `vendor/README.md`.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer standing in for `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Clears the buffer, keeping its capacity for reuse.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shortens the buffer to `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends the contents of `extend`.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Little-endian write interface (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian cursor-style read interface (subset of `bytes::Buf`).
///
/// # Panics
///
/// Like the real crate, the `get_*` methods panic when the buffer holds
/// fewer bytes than requested; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xy");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 2);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(b"abcdefgh1234");
        let cap = buf.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        buf.reserve(cap + 1);
        assert!(buf.capacity() > cap);
    }

    #[test]
    fn truncate_shortens() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abcdef");
        buf.truncate(2);
        assert_eq!(&buf[..], b"ab");
        buf.truncate(10);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
