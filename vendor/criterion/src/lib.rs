//! Offline stub of `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the criterion API this
//! workspace uses: `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! is calibrated so a sample lasts at least a few milliseconds, then the
//! median per-iteration time over `sample_size` samples is printed to
//! stdout (no statistical analysis, no HTML reports). See
//! `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"{name}/{param}"`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs the timed closure a calibrated number of times.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing sample-count and throughput config.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

/// Target wall time per sample; keeps runs short on small machines
/// while still dominating timer overhead.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);
/// Calibration cap so pathologically fast bodies can't spin forever.
const MAX_ITERS: u64 = 1 << 24;

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work so a rate is reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let per_iter = run_benchmark(self.sample_size, &mut f);
        report(&self.name, &id.id, per_iter, self.throughput);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let per_iter = run_benchmark(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        report(&self.name, &id.id, per_iter, self.throughput);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// Calibrates the iteration count, takes samples, returns the median
/// per-iteration time in nanoseconds.
fn run_benchmark<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> f64 {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration doubles the iteration count until one sample reaches
    // the target duration; it also serves as warm-up.
    loop {
        f(&mut bencher);
        if bencher.elapsed >= SAMPLE_TARGET || bencher.iters >= MAX_ITERS {
            break;
        }
        bencher.iters *= 2;
    }

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| {
            f(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn report(group: &str, id: &str, per_iter_ns: f64, throughput: Option<Throughput>) {
    let time = human_time(per_iter_ns);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!(
                "{group}/{id:<32} time: {time:>12}  thrpt: {} elem/s",
                human_count(rate)
            );
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!(
                "{group}/{id:<32} time: {time:>12}  thrpt: {}B/s",
                human_count(rate)
            );
        }
        None => println!("{group}/{id:<32} time: {time:>12}"),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_count(v: f64) -> String {
    if v < 1e3 {
        format!("{v:.1} ")
    } else if v < 1e6 {
        format!("{:.2} K", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2} M", v / 1e6)
    } else {
        format!("{:.3} G", v / 1e9)
    }
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. `--bench`); the
            // stub has no filtering, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples_is_finite() {
        let mut calls = 0u64;
        let per_iter = run_benchmark(5, &mut |b: &mut Bencher| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(per_iter.is_finite() && per_iter >= 0.0);
        assert!(calls > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3).throughput(Throughput::Elements(8));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("id", 4), &4u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", "64x64").id, "gemm/64x64");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
