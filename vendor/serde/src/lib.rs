//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros. The workspace never serializes through serde (the
//! wire protocol and model files are hand-rolled binary formats), so marker
//! traits are sufficient for compilation. See `vendor/README.md`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
