//! Offline stub of `proptest`.
//!
//! A deterministic, non-shrinking property-testing engine implementing the
//! subset of the proptest API this workspace uses: the `proptest!` macro,
//! `prop_assert*`/`prop_assume!`, range and inclusive-range strategies for
//! the primitive numeric types, `any::<T>()`, `collection::vec`,
//! `sample::select`, and ASCII-string generation for `&str` patterns
//! (the pattern's regex is ignored; printable ASCII + newline is drawn,
//! which covers the parser-fuzz usage here). Each test function runs a
//! fixed number of cases from a seed derived from its name, so failures
//! reproduce exactly. See `vendor/README.md`.

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert*!` failed; the test panics with this message.
    Fail(String),
}

/// Result type each generated case body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run-configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate runs 256; the stub keeps CI fast while still
        // exercising a meaningful spread of inputs.
        ProptestConfig { cases: 32 }
    }
}

/// A source of random values of one type (subset of `proptest::Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                self.start() + (rng.next_u64() as u128 % span) as $t
            }
        }
    )+};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * u as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start() + (self.end() - self.start()) * u as $t
            }
        }
    )+};
}
float_strategy!(f64, f32);

/// String strategy for `&str` patterns: draws printable ASCII (plus
/// newline) of length 0..=128. The regex itself is not interpreted.
impl Strategy for &str {
    type Value = String;
    fn sample_value(&self, rng: &mut TestRng) -> String {
        let len = rng.below(129);
        (0..len)
            .map(|_| {
                if rng.below(16) == 0 {
                    '\n'
                } else {
                    (0x20 + rng.below(0x5f) as u8) as char
                }
            })
            .collect()
    }
}

/// Types with a canonical "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty set");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Derives the per-test seed from the test function's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Defines property tests: each `fn` runs `cases` times with fresh
/// sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one test `fn` at a
/// time so the shared config expression can be repeated into each one.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases: u32 = ($cfg).cases;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < cases {
                attempts += 1;
                assert!(
                    attempts <= cases.saturating_mul(20),
                    "proptest stub: prop_assume! rejected too many cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::sample_value(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", attempts, msg)
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fails the current case with an assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}",
                        stringify!($lhs),
                        stringify!($rhs)
                    )));
                }
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} != {}",
                        stringify!($lhs),
                        stringify!($rhs)
                    )));
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    /// Module alias matching `proptest::prelude::prop`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..17, b in 0u64..5, x in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.25..0.75).contains(&x), "x = {x}");
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_select_strategies(
            data in prop::collection::vec(any::<u8>(), 0..16),
            pick in prop::sample::select(vec![1, 2, 3]),
        ) {
            prop_assert!(data.len() < 16);
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn string_strategy_is_ascii(text in "[ -~\n]{0,256}") {
            prop_assert!(text.bytes().all(|b| b == b'\n' || (0x20..0x7f).contains(&b)));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("alpha"), crate::seed_for("beta"));
    }
}
