//! Offline stub of `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — seeded
//! `StdRng`, `Rng::gen_range`, and `distributions::Uniform` — on top of a
//! SplitMix64 generator. Deterministic per seed, which is all the
//! workspace requires (synthetic inputs and untrained weights). Not
//! statistically rigorous and not the real rand crate; see
//! `vendor/README.md`.

/// Core random-number generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<SampleRange<T>>,
    {
        let r: SampleRange<T> = range.into();
        T::sample_in(self, r.low, r.high, r.inclusive)
    }
}

impl<T: RngCore> Rng for T {}

/// A uniform `f64` in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Half-open or inclusive sampling bounds, produced from range syntax.
pub struct SampleRange<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T> From<std::ops::Range<T>> for SampleRange<T> {
    fn from(r: std::ops::Range<T>) -> Self {
        SampleRange {
            low: r.start,
            high: r.end,
            inclusive: false,
        }
    }
}

impl<T: Copy> From<std::ops::RangeInclusive<T>> for SampleRange<T> {
    fn from(r: std::ops::RangeInclusive<T>) -> Self {
        SampleRange {
            low: *r.start(),
            high: *r.end(),
            inclusive: true,
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Draws one value in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let u = unit_f64(rng.next_u64());
                low + (high - low) * u as $t
            }
        }
    };
}
impl_sample_float!(f32);
impl_sample_float!(f64);

macro_rules! impl_sample_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (high as i128 - low as i128 + 1) as u128
                } else {
                    (high as i128 - low as i128) as u128
                };
                assert!(span > 0, "empty sample range");
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    };
}
impl_sample_int!(usize);
impl_sample_int!(u64);
impl_sample_int!(u32);
impl_sample_int!(i32);
impl_sample_int!(i64);
impl_sample_int!(u8);

/// Generators shipped with the stub.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Distribution sampling (subset of `rand::distributions`).
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// Subset of `rand::distributions::Distribution`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed or half-open interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_in(rng, self.low, self.high, self.inclusive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Uniform::new_inclusive(-2.0f32, 2.0f32);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..=2.0).contains(&v));
        }
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&v));
        }
    }
}
