//! An intelligent-personal-assistant query end to end: one voice query
//! fans out to ASR, POS and NER services on a DjiNN server — the workload
//! class (Siri, Google Now, Cortana, Echo) that motivates the paper.
//!
//! ```text
//! cargo run --example ipa_assistant --release
//! ```

use djinn_tonic::djinn::{DjinnClient, DjinnServer, ServerConfig};
use djinn_tonic::tonic_suite::{ipa::IpaPipeline, speech};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = DjinnServer::start_with_tonic_models(ServerConfig::default())?;
    let addr = server.local_addr();
    println!("DjiNN serving the assistant's DNN services at {addr}\n");

    let mut assistant = IpaPipeline::remote(addr)?;
    let audio = speech::synth_utterance(0.6, 17);
    println!(
        "voice query: {:.1}s of audio",
        audio.len() as f64 / speech::SAMPLE_RATE as f64
    );

    let response = assistant.answer(&audio)?;
    println!("transcript : {}", response.transcript.join(" "));
    println!("POS tags   : {:?}", response.pos_tags);
    if response.entities.is_empty() {
        println!("entities   : (none)");
    } else {
        for e in &response.entities {
            println!("entity     : {} (tag {})", e.word, e.tag);
        }
    }
    println!(
        "\nstage latency: ASR {:.1} ms | lexicon {:.2} ms | NLP {:.1} ms",
        response.asr_time.as_secs_f64() * 1e3,
        response.lexicon_time.as_secs_f64() * 1e3,
        response.nlp_time.as_secs_f64() * 1e3,
    );

    // What the service saw, from its own metrics endpoint.
    let mut client = DjinnClient::connect(addr)?;
    println!("\nserver-side stats:");
    for s in client.stats()? {
        println!(
            "  {:<5} {:>3} requests, mean device latency {:.1} ms",
            s.model,
            s.requests,
            s.mean_latency_us() / 1e3
        );
    }
    server.shutdown();
    Ok(())
}
