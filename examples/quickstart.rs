//! Quickstart: start a DjiNN service, send a digit image over TCP, print
//! the prediction.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use djinn_tonic::djinn::{DjinnClient, DjinnServer, ServerConfig};
use djinn_tonic::tonic_suite::image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start the service with all seven Tonic models loaded in memory.
    let server = DjinnServer::start_with_tonic_models(ServerConfig::default())?;
    println!("DjiNN service listening on {}", server.local_addr());

    // Connect like a mobile front-end would and ask what models exist.
    let mut client = DjinnClient::connect(server.local_addr())?;
    println!("registered models: {:?}", client.list_models()?);

    // Send a handwritten digit for recognition (DIG application).
    let digit = &image::synth_digits(1, 42)[0];
    let probs = client.infer("dig", &image::normalize(digit))?;
    let prediction = probs.row_argmax(0);
    println!(
        "digit prediction: {prediction} (p = {:.3})",
        probs.data()[prediction]
    );

    server.shutdown();
    Ok(())
}
