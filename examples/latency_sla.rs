//! Latency-aware capacity planning: for each Tonic application, sweep the
//! offered load on one K40-backed service and report mean/p99 latency —
//! then find the highest load that still meets a p99 SLA.
//!
//! ```text
//! cargo run --example latency_sla --release [p99_ms]
//! ```

use djinn_tonic::dnn::zoo::App;
use djinn_tonic::gpusim::openloop::{capacity_qps, run, OpenLoopConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sla_ms: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(50.0);
    println!("p99 SLA: {sla_ms} ms\n");
    println!(
        "{:>5} {:>10} {:>12} {:>10} {:>10} {:>10}  meets SLA?",
        "app", "load", "QPS", "mean ms", "p99 ms", "batch"
    );
    for app in App::ALL {
        let config = OpenLoopConfig {
            max_batch: app.service_meta().batch_size,
            ..OpenLoopConfig::default()
        };
        let cap = capacity_qps(app, &config)?;
        let mut best_ok: Option<f64> = None;
        for frac in [0.2, 0.5, 0.8, 0.95] {
            let r = run(app, cap * frac, &config)?;
            let ok = r.p99_latency_s * 1e3 <= sla_ms && !r.saturated;
            if ok {
                best_ok = Some(r.offered_qps);
            }
            println!(
                "{:>5} {:>9.0}% {:>12.1} {:>10.2} {:>10.2} {:>10.1}  {}",
                app.name(),
                frac * 100.0,
                r.offered_qps,
                r.mean_latency_s * 1e3,
                r.p99_latency_s * 1e3,
                r.mean_batch,
                if ok { "yes" } else { "NO" }
            );
        }
        match best_ok {
            Some(q) => println!("  -> provision {} at ≤ {q:.0} QPS per GPU\n", app.name()),
            None => println!(
                "  -> {} cannot meet {sla_ms} ms p99 on one GPU\n",
                app.name()
            ),
        }
    }
    Ok(())
}
