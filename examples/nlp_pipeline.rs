//! The natural-language pipeline: POS tagging, named-entity recognition,
//! and word chunking (which internally issues a POS request first, as in
//! the paper).
//!
//! ```text
//! cargo run --example nlp_pipeline --release
//! ```

use djinn_tonic::djinn::{DjinnServer, ServerConfig};
use djinn_tonic::dnn::zoo::App;
use djinn_tonic::tonic_suite::apps::TonicApp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = DjinnServer::start_with_tonic_models(ServerConfig::default())?;
    let addr = server.local_addr();

    let sentence: Vec<String> =
        "the company reported strong growth in the first quarter and the stock rose"
            .split_whitespace()
            .map(str::to_string)
            .collect();
    println!("sentence: {}\n", sentence.join(" "));

    let mut pos = TonicApp::remote(App::Pos, addr)?;
    let pos_tags = pos.run_pos(&sentence)?;
    print_tags("POS", &sentence, &pos_tags);

    let mut ner = TonicApp::remote(App::Ner, addr)?;
    let ner_tags = ner.run_ner(&sentence)?;
    print_tags("NER", &sentence, &ner_tags);

    // CHK makes its own POS service request before its DNN request.
    let mut chk = TonicApp::remote(App::Chk, addr)?;
    let chunks = chk.run_chk(&sentence)?;
    print_tags("CHK", &sentence, &chunks);

    server.shutdown();
    Ok(())
}

fn print_tags(task: &str, words: &[String], tags: &[usize]) {
    let rendered: Vec<String> = words
        .iter()
        .zip(tags)
        .map(|(w, t)| format!("{w}/{t}"))
        .collect();
    println!("{task}: {}\n", rendered.join(" "));
}
