//! Image services end to end: IMC, DIG and FACE queries against a remote
//! DjiNN server with server-side batching enabled, plus the modeled K40
//! latency for the same batches.
//!
//! ```text
//! cargo run --example image_service --release
//! ```

use std::time::Duration;

use djinn_tonic::djinn::{BatchConfig, DjinnServer, ServerConfig, SimGpuExecutor};
use djinn_tonic::dnn::zoo::{self, App};
use djinn_tonic::tonic_suite::{apps::TonicApp, image};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ServerConfig {
        batching: Some(BatchConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
        }),
        ..ServerConfig::default()
    };
    let server = DjinnServer::start_with_tonic_models(config)?;
    let addr = server.local_addr();
    println!("DjiNN with batching enabled at {addr}\n");

    // DIG: a page of five handwritten digits.
    let mut dig = TonicApp::remote(App::Dig, addr)?;
    let digits = image::synth_digits(5, 7);
    println!("DIG  predictions: {:?}", dig.run_dig(&digits)?);

    // FACE: who is in this photo? (83 PubFig identities)
    let mut face = TonicApp::remote(App::Face, addr)?;
    let faces = image::synth_faces(1, 3);
    println!("FACE predictions: {:?}", face.run_face(&faces)?);

    // IMC: classify one full photo (1000 ImageNet classes).
    let mut imc = TonicApp::remote(App::Imc, addr)?;
    let photos = image::synth_photos(1, 11);
    println!("IMC  predictions: {:?}", imc.run_imc(&photos)?);

    // What the paper's K40 would charge for these (modeled latency).
    println!("\nModeled K40 forward latency at the Table 3 batch sizes:");
    let gpu = SimGpuExecutor::default();
    for app in [App::Imc, App::Dig, App::Face] {
        let meta = app.service_meta();
        let net = zoo::network(app)?;
        let lat = gpu.modeled_latency(&net, meta.inputs_per_query * meta.batch_size)?;
        println!(
            "  {:<4} batch {:>2}: {:>8.2} ms",
            app.name(),
            meta.batch_size,
            lat.as_secs_f64() * 1e3
        );
    }

    server.shutdown();
    Ok(())
}
