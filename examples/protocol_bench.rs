//! Wire-protocol throughput on a FACE/ASR-scale tensor payload.
//!
//! Compares the bulk little-endian f32 decode in `get_tensor` (chunked
//! `from_le_bytes` over the slice) against the per-element cursor loop it
//! replaced, plus full-frame encode/decode rates. Run with:
//!
//! ```text
//! cargo run --release --example protocol_bench
//! ```

use std::hint::black_box;
use std::time::Instant;

use bytes::BytesMut;
use djinn_tonic::djinn::protocol::{FrameReader, Response};
use djinn_tonic::tensor::{Shape, Tensor};

/// The per-element decode loop `get_tensor` used before the bulk copy:
/// one 4-byte copy + cursor advance per f32 (mirrors `Buf::get_f32_le`).
fn naive_f32_decode(bytes: &[u8], n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n);
    let mut cursor = bytes;
    for _ in 0..n {
        let mut b = [0u8; 4];
        b.copy_from_slice(&cursor[..4]);
        cursor = &cursor[4..];
        out.push(f32::from_le_bytes(b));
    }
    out
}

fn bulk_f32_decode(bytes: &[u8], n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n);
    out.extend(
        bytes[..n * 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
    );
    out
}

fn time<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    // A FACE-batch-scale payload: 16 x 3 x 227 x 227 f32 ~= 9.9 MB.
    let shape = Shape::nchw(16, 3, 227, 227);
    let n = shape.volume();
    let mb = (n * 4) as f64 / 1e6;
    let tensor = Tensor::random_uniform(shape, 1.0, 13);
    let rsp = Response::Output {
        tensor,
        trace: Default::default(),
    };
    let wire = rsp.encode().expect("encode");
    println!(
        "payload: {n} f32 ({mb:.1} MB tensor data, {:.1} MB frame)",
        wire.len() as f64 / 1e6
    );

    let iters = 10;
    // Isolate the f32 section: rank byte + 4 dims after the 7-byte
    // header+status and the 40-byte v3 trace block.
    let data_off = 6 + 1 + 40 + 1 + 4 * 4;
    let f32_section = &wire[data_off..];

    let naive = time(iters, || naive_f32_decode(f32_section, n));
    let bulk = time(iters, || bulk_f32_decode(f32_section, n));
    let full_decode = time(iters, || Response::decode(&wire).expect("decode"));
    let full_encode = time(iters, || rsp.encode().expect("encode"));

    println!(
        "f32 decode  naive (old): {:8.2} ms  ({:7.1} MB/s)",
        naive * 1e3,
        mb / naive
    );
    println!(
        "f32 decode  bulk  (new): {:8.2} ms  ({:7.1} MB/s)   {:.2}x faster",
        bulk * 1e3,
        mb / bulk,
        naive / bulk
    );
    println!(
        "frame decode (Response): {:8.2} ms  ({:7.1} MB/s)",
        full_decode * 1e3,
        mb / full_decode
    );
    println!(
        "frame encode (Response): {:8.2} ms  ({:7.1} MB/s)",
        full_encode * 1e3,
        mb / full_encode
    );

    // Buffer-reuse fast path: same frame encoded into a retained scratch
    // buffer (zero allocations after the first call) vs a fresh Vec each
    // time, and borrowed frame reads vs the owning copy-out.
    let mut scratch = BytesMut::new();
    rsp.encode_framed_into(&mut scratch).expect("warmup");
    let reuse_encode = time(iters, || {
        rsp.encode_framed_into(&mut scratch).expect("encode");
        scratch.len()
    });
    println!(
        "frame encode (reused buf): {:6.2} ms  ({:7.1} MB/s)   {:.2}x vs fresh-Vec",
        reuse_encode * 1e3,
        mb / reuse_encode,
        full_encode / reuse_encode
    );

    let mut framed = Vec::with_capacity(scratch.len());
    framed.extend_from_slice(&scratch);
    let mut reader = FrameReader::new();
    let owning_read = time(iters, || {
        let mut cursor = &framed[..];
        reader
            .read_frame(&mut cursor)
            .expect("read")
            .map(|v| v.len())
    });
    let borrowed_read = time(iters, || {
        let mut cursor = &framed[..];
        reader
            .read_frame_ref(&mut cursor)
            .expect("read")
            .map(<[u8]>::len)
    });
    println!(
        "frame read  owned  (old): {:7.2} ms  ({:7.1} MB/s)",
        owning_read * 1e3,
        mb / owning_read
    );
    println!(
        "frame read  borrow (new): {:7.2} ms  ({:7.1} MB/s)   {:.2}x faster",
        borrowed_read * 1e3,
        mb / borrowed_read,
        owning_read / borrowed_read
    );

    let mut out = Vec::new();
    Response::decode_output_into(&wire, &mut out).expect("warmup");
    let decode_into = time(iters, || {
        Response::decode_output_into(&wire, &mut out).expect("decode")
    });
    println!(
        "output decode into (new): {:7.2} ms  ({:7.1} MB/s)   {:.2}x vs owning decode",
        decode_into * 1e3,
        mb / decode_into,
        full_decode / decode_into
    );
}
