//! Serving-tier provisioning study: feed the *measured* router and
//! replica throughput (see `results/router_bench.txt`) into the TCO
//! model and print what a warehouse-scale deployment of the
//! router-fronted tier costs at several target loads.
//!
//! ```text
//! cargo run --example router_provisioning --release \
//!     [replica_rps] [router_rps]
//! ```
//!
//! Defaults are the numbers measured on this repository's bench: a
//! delay-bound tiny-zoo replica (~2.6k req/s) and one router process
//! (throughput of the 3-replica aggregate run — the router was not the
//! bottleneck there, so its measured capacity is a lower bound).

use djinn_tonic::wsc::{ServingTierMeasurement, ServingTierPlan, TcoParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let replica_rps: f64 = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2600.0);
    let router_rps: f64 = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(7800.0);
    let measured = ServingTierMeasurement {
        replica_rps,
        router_rps,
    };
    let params = TcoParams::paper();

    println!(
        "measured: replica {replica_rps:.0} req/s, router {router_rps:.0} req/s (lower bound)"
    );
    println!(
        "replicas are beefy servers + 1 GPU, routers are wimpy servers; \
         70% planned utilization\n"
    );
    println!(
        "{:>12} {:>10} {:>9} {:>10} {:>14} {:>12}",
        "target req/s", "replicas", "routers", "repl/rtr", "3y TCO $", "$/M reqs"
    );
    for target in [10_000.0, 100_000.0, 1_000_000.0] {
        let plan = ServingTierPlan::provision(&params, &measured, target, 0.7, 1.0);
        println!(
            "{:>12.0} {:>10.1} {:>9.1} {:>10.1} {:>14.0} {:>12.3}",
            plan.target_rps,
            plan.replicas,
            plan.routers,
            plan.replicas_per_router(),
            plan.cost.total(),
            plan.cost_per_million_requests(&params),
        );
    }
    println!(
        "\nthe router tier is a rounding error: at every load the wimpy \
         front ends are <{:.0}% of fleet TCO",
        {
            let plan = ServingTierPlan::provision(&params, &measured, 100_000.0, 0.7, 1.0);
            let routers_only = ServingTierPlan::provision(
                &params,
                &ServingTierMeasurement {
                    replica_rps: f64::MAX,
                    router_rps,
                },
                100_000.0,
                0.7,
                0.0,
            );
            routers_only.cost.total() / plan.cost.total() * 100.0 + 1.0
        }
    );
    Ok(())
}
