//! Train a digit recognizer from scratch, save it as a `.djnm` model
//! file, and serve it through DjiNN — the full life cycle of a
//! "pretrained model" inside this workspace.
//!
//! The task is synthetic but honest: classify which quadrant of the
//! image holds a bright blob (4 classes), using the same conv/pool/fc
//! layer stack as the MNIST network.
//!
//! ```text
//! cargo run --example train_digits --release
//! ```

use djinn_tonic::djinn::{DjinnClient, DjinnServer, ModelRegistry, ServerConfig};
use djinn_tonic::dnn::train::{SgdConfig, Trainer};
use djinn_tonic::dnn::{modelfile, parser, Network};
use djinn_tonic::tensor::{Shape, Tensor};

fn sample(seed: u64) -> (Tensor, usize) {
    let q = (seed % 4) as usize;
    let (cy, cx) = [(7i64, 7i64), (7, 21), (21, 7), (21, 21)][q];
    let jitter = ((seed / 4) % 5) as i64 - 2;
    let img = Tensor::from_fn(Shape::nchw(1, 1, 28, 28), |i| {
        let y = (i / 28) as i64;
        let x = (i % 28) as i64;
        if (x - cx - jitter).abs() <= 2 && (y - cy + jitter).abs() <= 2 {
            1.0
        } else {
            0.0
        }
    });
    (img, q)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Architecture in the text format, like a prototxt.
    let def = parser::parse_netdef(
        "
        name: quadrant
        input: 1 28 28
        layer conv1 conv out=8 kernel=5 stride=1 pad=0
        layer relu1 relu
        layer pool1 maxpool kernel=2 stride=2
        layer fc1 fc out=32
        layer relu2 relu
        layer fc2 fc out=4
        layer prob softmax
    ",
    )?;
    let net = Network::with_random_weights(def, 7)?;
    println!("training `quadrant` ({} params)…", net.param_count());

    let mut trainer = Trainer::new(
        net,
        SgdConfig {
            lr: 0.05,
            dropout_p: 0.0,
            ..SgdConfig::default()
        },
    );
    for epoch in 0..40 {
        let mut loss = 0.0;
        for b in 0..4 {
            let items: Vec<(Tensor, usize)> =
                (0..8).map(|i| sample((epoch * 4 + b) * 8 + i)).collect();
            let batch =
                Tensor::stack_batch(&items.iter().map(|(t, _)| t.clone()).collect::<Vec<_>>())?;
            let labels: Vec<usize> = items.iter().map(|(_, l)| *l).collect();
            loss += trainer.step(&batch, &labels)?;
        }
        if epoch % 10 == 0 {
            println!("  epoch {epoch:>2}: loss {:.4}", loss / 4.0);
        }
    }

    // Save the trained model to disk…
    let net = trainer.into_network();
    let dir = std::env::temp_dir().join("djinn-train-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("quadrant.djnm");
    modelfile::save(&net, std::io::BufWriter::new(std::fs::File::create(&path)?))?;
    println!("saved model to {}", path.display());

    // …load it into a fresh DjiNN instance and query it over TCP.
    let registry = ModelRegistry::from_dir(&dir)?;
    let server = DjinnServer::start(registry, ServerConfig::default())?;
    let mut client = DjinnClient::connect(server.local_addr())?;
    let mut correct = 0;
    let trials = 40;
    for seed in 5000..5000 + trials {
        let (img, label) = sample(seed);
        let probs = client.infer("quadrant", &img)?;
        if probs.row_argmax(0) == label {
            correct += 1;
        }
    }
    println!("held-out accuracy via DjiNN: {correct}/{trials}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
