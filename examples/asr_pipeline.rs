//! Automatic speech recognition end to end: synthesize an utterance,
//! extract mel filterbank features, run the Kaldi-style acoustic model
//! through DjiNN, and Viterbi-decode the phone sequence.
//!
//! ```text
//! cargo run --example asr_pipeline --release
//! ```

use djinn_tonic::djinn::{DjinnServer, ServerConfig};
use djinn_tonic::dnn::zoo::App;
use djinn_tonic::tonic_suite::{apps::TonicApp, speech};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = DjinnServer::start_with_tonic_models(ServerConfig::default())?;
    let addr = server.local_addr();

    // Half a second of synthetic speech (47 analysis frames). The paper's
    // reference query carries 548 frames; a shorter clip keeps the real
    // CPU forward pass snappy in an example.
    let utterance = speech::synth_utterance(0.5, 9);
    println!(
        "utterance: {:.1}s of audio ({} samples)",
        utterance.len() as f64 / speech::SAMPLE_RATE as f64,
        utterance.len()
    );

    let frames = speech::filterbank(&utterance);
    println!(
        "preprocessing: {} filterbank frames x {} mel bins -> {}-dim spliced DNN input",
        frames.len(),
        speech::NUM_BINS,
        speech::FEATURE_DIM
    );

    let mut asr = TonicApp::remote(App::Asr, addr)?;
    let phones = asr.run_asr(&utterance)?;
    println!(
        "decoded phone sequence ({} phones): {:?}",
        phones.len(),
        phones
    );

    server.shutdown();
    Ok(())
}
