//! WSC design planner: for each workload mix and DNN share, compare the
//! three datacenter organizations of the paper and pick the cheapest.
//!
//! ```text
//! cargo run --example wsc_planner --release [dnn_share]
//! ```

use djinn_tonic::wsc::{provision, AppPerfDb, Mix, NetworkTech, TcoParams, WscDesign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let share: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.7);
    println!("building per-application performance database…");
    let db = AppPerfDb::build()?;
    let tech = NetworkTech::pcie_v3_10gbe();
    let params = TcoParams::paper();

    for mix in [Mix::Mixed, Mix::Image, Mix::Nlp] {
        println!(
            "\n=== {} workload, {:.0}% DNN ===",
            mix.name(),
            share * 100.0
        );
        println!(
            "{:<18} {:>9} {:>7} {:>7} {:>12} {:>8}",
            "design", "servers", "boxes", "GPUs", "3y TCO $", "vs CPU"
        );
        let cpu = provision(WscDesign::CpuOnly, mix, share, &db, &tech, &params);
        let mut best = (WscDesign::CpuOnly, cpu.tco_total());
        for design in [
            WscDesign::CpuOnly,
            WscDesign::IntegratedGpu,
            WscDesign::DisaggregatedGpu,
        ] {
            let r = provision(design, mix, share, &db, &tech, &params);
            if r.tco_total() < best.1 {
                best = (design, r.tco_total());
            }
            println!(
                "{:<18} {:>9.1} {:>7.1} {:>7.1} {:>12.0} {:>7.1}x",
                design.name(),
                r.beefy_servers,
                r.wimpy_servers,
                r.gpus,
                r.tco_total(),
                cpu.tco_total() / r.tco_total()
            );
        }
        println!("cheapest: {}", best.0.name());
    }
    Ok(())
}
